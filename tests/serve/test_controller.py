"""Elasticity-layer units and the serve-path bugfix sweep.

Covers the AIMD control law (convergence without oscillation across
seeds), rebalancing grants, the exclusive breaker probe (thundering-
herd regression), token-bucket clock discipline, and the nearest-rank
percentile — each a deterministic function of its inputs.
"""

import random

from repro.chaos.retry import RetryPolicy
from repro.chaos.serve_faults import (ServeChaosConfig, ServeFaultInjector,
                                      ShardFrozen)
from repro.engine import make_structure
from repro.serve import (GET, CircuitBreaker, ControllerConfig,
                         ElasticityController, Request, ServeFrontend,
                         TokenBucket, VirtualLoop, derive_controller,
                         percentile)
from repro.serve.breaker import CLOSED, HALF_OPEN, OPEN
from repro.serve.errors import CircuitOpen


def build(loop, structure="gfsl", **kw):
    from repro.workloads import MIX_10_10_80, generate
    w = generate(MIX_10_10_80, key_range=512, n_ops=64, seed=5)
    st = make_structure(structure, w, team_size=8, seed=0)
    return ServeFrontend(st, loop, **kw)


def get(key, **kw):
    return Request(kind=GET, key=key, **kw)


class TestPercentile:
    """Nearest-rank: smallest value with >= q of the mass at or below
    it.  The old banker's-rounded ``round(q*(n-1))`` rank under-read
    the tail on small samples."""

    def test_p99_of_60_samples_is_the_max(self):
        # ceil(0.99*60) = 60 -> the max; round(0.99*59) = 58 -> the
        # 59th of 60 (the old bug under-reported by one rank).
        assert percentile(list(range(1, 61)), 0.99) == 60.0

    def test_p99_of_100_samples(self):
        assert percentile(list(range(1, 101)), 0.99) == 99.0

    def test_p50_small_sets(self):
        assert percentile([1, 2, 3, 4], 0.50) == 2.0
        assert percentile([1, 2, 3], 0.50) == 2.0
        assert percentile([7], 0.50) == 7.0
        assert percentile([7], 0.99) == 7.0

    def test_order_independent_and_empty(self):
        assert percentile([3, 1, 2], 1.0) == 3.0
        assert percentile([], 0.99) is None


class TestTokenBucketClockDiscipline:
    def test_non_monotonic_now_never_rewinds(self):
        tb = TokenBucket(rate=100.0, burst=10.0, now=0)
        assert tb.take(100)                   # settle at step 100
        before = tb.tokens
        assert tb.take(40)                    # stale step: no credit...
        assert tb.tokens == before - 1.0      # ...just the spend
        assert tb._last == 100                # and no clock rewind

    def test_level_is_a_pure_read(self):
        tb = TokenBucket(rate=100.0, burst=10.0, now=0)
        for _ in range(8):
            tb.take(0)
        drained = tb.tokens
        # Projecting the refill at a future step commits nothing.
        lvl = tb.level(50)
        assert lvl > drained / tb.burst
        assert tb.level(50) == lvl            # repeatable
        assert tb.tokens == drained
        assert tb._last == 0
        # The next take at that step sees the same refill it projected.
        twin = TokenBucket(rate=100.0, burst=10.0, now=0)
        for _ in range(8):
            twin.take(0)
        assert tb.take(50) == twin.take(50)
        assert tb.tokens == twin.tokens

    def test_set_rate_settles_credit_at_the_old_rate(self):
        tb = TokenBucket(rate=100.0, burst=100.0, now=0)
        tb.tokens = 0.0
        tb.set_rate(1000.0, now=100)          # 100 steps @ 0.1/step
        assert tb.tokens == 10.0              # old-rate credit
        assert tb.take(200)                   # 100 steps @ 1.0/step
        assert tb.tokens == 100.0 - 1.0       # capped, then spent

    def test_deterministic_under_interleaved_reads(self):
        def run(with_reads):
            tb = TokenBucket(rate=50.0, burst=8.0, now=0)
            out = []
            for step in (0, 10, 10, 7, 40, 40, 200, 190, 500):
                if with_reads:
                    tb.level(step + 3)
                out.append(tb.take(step))
            return out, tb.tokens
        assert run(False) == run(True)


class TestBreakerProbeGate:
    def test_exactly_one_probe_carrier(self):
        b = CircuitBreaker(threshold=1, reset_steps=100)
        b.record_failure(0)
        assert b.state == OPEN
        assert not b.admits(50)               # window still open
        assert b.admits(100)                  # the probe carrier
        # Thundering-herd regression: the rest keep failing fast.
        assert not b.admits(100)
        assert not b.admits(150)
        b.record_success()
        assert b.state == CLOSED
        assert b.admits(151)

    def test_failed_probe_rearms_the_gate(self):
        b = CircuitBreaker(threshold=1, reset_steps=100)
        b.record_failure(0)
        assert b.admits(120)
        b.record_failure(120)                 # probe died
        assert b.state == OPEN
        assert not b.admits(150)
        assert b.admits(220)                  # next window, next carrier

    def test_flush_probe_also_claims_the_slot(self):
        b = CircuitBreaker(threshold=1, reset_steps=100)
        b.record_failure(0)
        assert b.allow_flush(110)             # queued flush is the probe
        assert b.state == HALF_OPEN
        assert not b.admits(110)              # submissions stay gated

    def test_no_thundering_herd_through_the_frontend(self):
        loop = VirtualLoop()
        chaos = ServeChaosConfig(frozen_windows=((0, 0, 100),))
        fe = build(loop, faults=ServeFaultInjector(chaos),
                   coalesce_size=1, coalesce_steps=10,
                   breaker_threshold=1, breaker_reset_steps=200,
                   retry=RetryPolicy.bounded(1))

        async def main():
            fe.start()
            doomed = await fe.submit(get(10))
            await loop.sleep(400)             # past freeze + reset
            herd = [await fe.submit(get(20 + i)) for i in range(4)]
            await fe.drain()
            await fe.close()
            return doomed, herd

        doomed, herd = loop.run_until_complete(main())
        assert isinstance(doomed.exception(), ShardFrozen)
        # One probe carrier completes; the rest fail fast instead of
        # queueing behind the probe and re-wedging the shard.
        outcomes = [f.exception() for f in herd]
        assert sum(e is None for e in outcomes) == 1
        assert sum(isinstance(e, CircuitOpen) for e in outcomes) == 3
        assert fe.breakers[0].state == CLOSED
        assert fe.stats.breaker_fastfail == 3


def drive(ctrl, cfg, seed, ticks, plant, occupancy=0.5, warmup=0):
    """Run the control loop against a synthetic plant: each period the
    shard observes 20 latency samples drawn around ``plant(rate)``."""
    rng = random.Random(seed)
    now, trajectory = 0, []
    for t in range(ticks):
        rate = ctrl.effective_rates[0]
        for _ in range(20):
            ctrl.observe(0, max(1, int(plant(rate)
                                       * (1 + rng.uniform(-0.05, 0.05)))))
        now += cfg.interval
        ctrl.tick(now, [occupancy], [False])
        if t >= warmup:
            trajectory.append(ctrl.rates[0])
    return trajectory


class TestControlLaw:
    def test_aimd_converges_without_oscillation_across_seeds(self):
        # Plant: observed p99 proportional to the admitted rate, so the
        # sustainable rate for target_p99=150 is ~150 tokens/kstep.
        cfg = ControllerConfig(target_p99=150.0, interval=100,
                               increase=5.0, decrease=0.7,
                               min_rate=1.0, max_rate=1000.0)
        for seed in (1, 2, 3):
            ctrl = ElasticityController(1, 100.0, cfg)
            traj = drive(ctrl, cfg, seed, ticks=70,
                         plant=lambda r: r, warmup=30)
            lo, hi = min(traj), max(traj)
            # Settles in the AIMD band around the sustainable rate: the
            # sawtooth never exceeds one multiplicative cut + the
            # additive climb, and never walks off to either clamp.
            assert 90.0 < lo and hi < 170.0, (seed, lo, hi)
            assert hi - lo <= (1 - cfg.decrease) * 160.0 + 2 * cfg.increase
            assert cfg.min_rate < lo and hi < cfg.max_rate

    def test_trajectory_is_deterministic(self):
        cfg = ControllerConfig(interval=100, increase=5.0)
        runs = []
        for _ in range(2):
            ctrl = ElasticityController(1, 100.0, cfg)
            runs.append(drive(ctrl, cfg, 9, ticks=40, plant=lambda r: r))
        assert runs[0] == runs[1]

    def test_breaker_open_cuts_to_the_floor_and_donates(self):
        cfg = ControllerConfig(interval=100, min_rate=5.0)
        ctrl = ElasticityController(4, 400.0, cfg)
        for sid in (0, 2, 3):
            for _ in range(5):
                ctrl.observe(sid, 50)
        delta = ctrl.tick(100, [0.4, 0.0, 0.4, 0.4],
                          [False, True, False, False])
        assert ctrl.rates[1] == cfg.min_rate
        assert delta["rebalanced"] == 1
        assert ctrl.grants[1] == 0.0
        share = 400.0 / 4
        donated = share - cfg.min_rate
        assert sum(ctrl.grants) == donated
        assert all(g == donated / 3 for sid, g in enumerate(ctrl.grants)
                   if sid != 1)
        assert ctrl.effective_rates[0] > share

    def test_windows_track_occupancy(self):
        cfg = ControllerConfig(interval=100, min_window=20, max_window=220)
        ctrl = ElasticityController(2, 100.0, cfg)
        ctrl.observe(0, 10)
        ctrl.observe(1, 10)
        ctrl.tick(100, [0.0, 1.0], [False, False])
        assert ctrl.windows[0] == 20          # idle: latency floor
        assert ctrl.windows[1] == 220         # saturated: batch it up
        ctrl.observe(0, 10)
        ctrl.tick(200, [0.5, 0.0], [False, False])
        assert ctrl.windows[0] == 120
        assert ctrl.windows[1] == 20          # shrinks back when idle

    def test_derive_scales_from_static_knobs(self):
        cfg = derive_controller(600.0, 4, 150)
        assert cfg.increase == 600.0 / 4 / 8
        assert cfg.max_rate == 600.0
        assert cfg.min_window == 25 and cfg.max_window == 600
        assert derive_controller(600.0, 4, 150, min_window=40,
                                 max_window=80).max_window == 80


class TestHotShardRebalance:
    def test_hot_shard_absorbs_idle_budget(self):
        loop = VirtualLoop()
        fe = build(loop, structure="gfsl@4", adaptive=True,
                   admit_rate=400.0, admit_burst=32.0,
                   coalesce_size=4, coalesce_steps=60,
                   control_interval=100, target_p99=5000.0)
        hot = fe.shard_of(1)
        hotspot = [k for k in range(1, 512) if fe.shard_of(k) == hot][:32]
        assert len(hotspot) >= 8

        async def main():
            fe.start()
            futs = []
            for burst in range(6):            # span several periods
                for k in hotspot:
                    futs.append(await fe.submit(get(k)))
                await loop.sleep(120)
            await fe.drain()
            await fe.close()
            return futs

        futs = loop.run_until_complete(main())
        ctrl = fe.controller
        share = 400.0 / 4
        assert fe.stats.ctrl_ticks >= 3
        assert fe.stats.ctrl_rebalances >= 1
        # The cold shards' idle slices landed on the hot shard.
        assert ctrl.grants[hot] > 0.0
        assert ctrl.effective_rates[hot] > share
        for sid in range(4):
            if sid != hot:
                assert ctrl.grants[sid] == 0.0
        assert all(f.done() for f in futs)
        assert fe.stats.terminated == fe.stats.submitted
