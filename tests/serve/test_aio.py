"""The deterministic virtual-time async kernel (repro.serve.aio).

The frontend's correctness arguments lean on this kernel's guarantees:
FIFO ready order, timers firing in (when, arming-order), deadlines on
queue waits, and HangError instead of a silent hang."""

import pytest

from repro.serve.aio import (TIMED_OUT, Future, HangError, Queue,
                             QueueEmpty, QueueFull, VirtualLoop)


class TestLoop:
    def test_sleep_orders_by_virtual_time(self):
        loop = VirtualLoop()
        order = []

        async def napper(name, steps):
            await loop.sleep(steps)
            order.append((name, loop.now))

        async def main():
            tasks = [loop.create_task(napper("a", 30)),
                     loop.create_task(napper("b", 10)),
                     loop.create_task(napper("c", 20))]
            for t in tasks:
                await t

        loop.run_until_complete(main())
        assert order == [("b", 10), ("c", 20), ("a", 30)]
        assert loop.now == 30

    def test_same_deadline_fires_in_arming_order(self):
        loop = VirtualLoop()
        fired = []
        loop.call_at(5, fired.append, "first")
        loop.call_at(5, fired.append, "second")

        async def main():
            await loop.sleep(6)

        loop.run_until_complete(main())
        assert fired == ["first", "second"]

    def test_task_result_and_exception_propagate(self):
        loop = VirtualLoop()

        async def boom():
            await loop.sleep(1)
            raise ValueError("boom")

        async def main():
            task = loop.create_task(boom())
            with pytest.raises(ValueError):
                await task
            return 42

        assert loop.run_until_complete(main()) == 42

    def test_deadlock_raises_hang_error(self):
        loop = VirtualLoop()

        async def main():
            await Future(loop)          # nobody will ever resolve this

        with pytest.raises(HangError, match="deadlock"):
            loop.run_until_complete(main())

    def test_max_steps_raises_hang_error(self):
        loop = VirtualLoop()

        async def spinner():
            while True:
                await loop.sleep(100)

        async def main():
            loop.create_task(spinner())
            await Future(loop)

        with pytest.raises(HangError, match="livelock"):
            loop.run_until_complete(main(), max_steps=1000)

    def test_determinism_two_runs_identical(self):
        def run():
            loop = VirtualLoop()
            trace = []

            async def worker(i):
                await loop.sleep(i * 3 % 7)
                trace.append((i, loop.now))

            async def main():
                tasks = [loop.create_task(worker(i)) for i in range(8)]
                for t in tasks:
                    await t

            loop.run_until_complete(main())
            return trace

        assert run() == run()


class TestQueue:
    def test_fifo_and_nowait(self):
        loop = VirtualLoop()
        q = Queue(loop, maxsize=2)
        q.put_nowait(1)
        q.put_nowait(2)
        with pytest.raises(QueueFull):
            q.put_nowait(3)
        assert q.get_nowait() == 1
        assert q.get_nowait() == 2
        with pytest.raises(QueueEmpty):
            q.get_nowait()

    def test_get_deadline_times_out(self):
        loop = VirtualLoop()
        q = Queue(loop)

        async def main():
            return await q.get(deadline=50)

        assert loop.run_until_complete(main()) is TIMED_OUT
        assert loop.now == 50

    def test_get_wakes_on_put(self):
        loop = VirtualLoop()
        q = Queue(loop)

        async def producer():
            await loop.sleep(10)
            q.put_nowait("item")

        async def main():
            loop.create_task(producer())
            return await q.get(deadline=100)

        assert loop.run_until_complete(main()) == "item"
        assert loop.now == 10

    def test_put_blocks_until_room_then_succeeds(self):
        loop = VirtualLoop()
        q = Queue(loop, maxsize=1)
        q.put_nowait("old")

        async def consumer():
            await loop.sleep(20)
            q.get_nowait()

        async def main():
            loop.create_task(consumer())
            return await q.put("new", deadline=100)

        assert loop.run_until_complete(main()) is True
        assert q.get_nowait() == "new"

    def test_put_deadline_returns_false_and_drops(self):
        loop = VirtualLoop()
        q = Queue(loop, maxsize=1)
        q.put_nowait("old")

        async def main():
            return await q.put("new", deadline=30)

        assert loop.run_until_complete(main()) is False
        assert loop.now == 30
        assert q.get_nowait() == "old"
        with pytest.raises(QueueEmpty):
            q.get_nowait()              # the timed-out item was not stored
