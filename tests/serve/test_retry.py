"""The shared RetryPolicy (repro.chaos.retry) and its lock-path wiring."""

import pytest

from repro.chaos.retry import RetryPolicy
from repro.chaos.serve_faults import ShardFrozen
from repro.chaos.watchdog import LivelockDetected
from repro.core.locks import DEFAULT_LOCK_RETRY_LIMIT, LockTimeout, \
    _retry_policy
from repro.core.traversal import RestartStorm


class TestBounds:
    def test_allows_counts_attempts(self):
        p = RetryPolicy(max_attempts=3)
        assert p.allows(0) and p.allows(2)
        assert not p.allows(3) and not p.allows(7)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)

    def test_bounded_never_backs_off(self):
        p = RetryPolicy.bounded(5)
        assert p.max_attempts == 5
        assert all(p.backoff_steps(n) == 0 for n in range(1, 10))


class TestBackoff:
    def test_exponential_growth_and_cap(self):
        p = RetryPolicy(max_attempts=10, base_steps=100, multiplier=2.0,
                        max_steps=500, jitter=0.0)
        assert [p.backoff_steps(n) for n in (1, 2, 3, 4, 5)] == \
            [100, 200, 400, 500, 500]

    def test_jitter_is_seeded(self):
        def draws(seed):
            return [RetryPolicy(base_steps=100, seed=seed)
                    .backoff_steps(n) for n in range(1, 6)]
        a, b = draws(7), draws(7)
        assert a == b
        assert all(v >= 1 for v in a)
        assert draws(7) != draws(8)

    def test_jitter_stays_within_spread(self):
        p = RetryPolicy(base_steps=1000, multiplier=1.0, jitter=0.25,
                        seed=3)
        for n in range(1, 50):
            assert 750 <= p.backoff_steps(n) <= 1250


class TestRetryable:
    def test_default_kinds(self):
        p = RetryPolicy()
        assert p.is_retryable(LockTimeout(3, 9))
        assert p.is_retryable(RestartStorm(10, 99, "traverse"))
        assert p.is_retryable(ShardFrozen(1, 50))     # a LockTimeout
        assert p.is_retryable(LivelockDetected("spinning"))
        assert not p.is_retryable(ValueError("nope"))

    def test_custom_tuple_and_callable(self):
        p = RetryPolicy(retryable=(KeyError,))
        assert p.is_retryable(KeyError("k"))
        assert not p.is_retryable(LockTimeout(0, 1))
        q = RetryPolicy(retryable=lambda exc: "yes" in str(exc))
        assert q.is_retryable(RuntimeError("yes please"))
        assert not q.is_retryable(RuntimeError("no"))


class TestLockPathWiring:
    """repro.core.locks delegates its attempt bound to a cached
    RetryPolicy — one policy object per structure, rebuilt only when
    the structure's ``lock_retry_limit`` changes."""

    class _Structure:
        pass

    def test_policy_cached_per_structure(self):
        sl = self._Structure()
        sl.lock_retry_limit = 3
        p = _retry_policy(sl)
        assert p.max_attempts == 3
        assert _retry_policy(sl) is p

    def test_policy_rebuilt_when_limit_changes(self):
        sl = self._Structure()
        sl.lock_retry_limit = 3
        p = _retry_policy(sl)
        sl.lock_retry_limit = 8
        q = _retry_policy(sl)
        assert q is not p and q.max_attempts == 8
        assert _retry_policy(sl) is q

    def test_default_limit_matches_historic_constant(self):
        sl = self._Structure()
        assert _retry_policy(sl).max_attempts == DEFAULT_LOCK_RETRY_LIMIT

    def test_lock_shape_is_pure_bound(self):
        sl = self._Structure()
        sl.lock_retry_limit = 4
        p = _retry_policy(sl)
        assert p.backoff_steps(1) == 0      # spinning teams never sleep
