"""ServeFrontend request path: coalescing, admission ladder, breaker.

Each test drives the frontend on a :class:`VirtualLoop`, so every
scenario is a deterministic function of its inputs — including the
chaos ones (frozen shards are step windows, not wall-clock races).
"""

from repro.chaos.retry import RetryPolicy
from repro.chaos.serve_faults import (ServeChaosConfig, ServeFaultInjector,
                                      ShardFrozen)
from repro.engine import make_structure
from repro.serve import (GET, RANGE, ClientState, Request, ServeFrontend,
                         VirtualLoop)
from repro.serve.aio import Queue
from repro.serve.errors import CircuitOpen, Overloaded
from repro.workloads import MIX_10_10_80, generate


def build(loop, structure="gfsl", **kw):
    w = generate(MIX_10_10_80, key_range=512, n_ops=64, seed=5)
    st = make_structure(structure, w, team_size=8, seed=0)
    return ServeFrontend(st, loop, **kw)


def frozen_frontend(loop, window, **kw):
    """A single-shard frontend whose shard 0 is frozen for ``window``."""
    chaos = ServeChaosConfig(frozen_windows=(window,))
    return build(loop, faults=ServeFaultInjector(chaos), **kw)


def get(key, **kw):
    return Request(kind=GET, key=key, **kw)


class TestCoalescer:
    def test_flush_on_size(self):
        loop = VirtualLoop()
        fe = build(loop, coalesce_size=4, coalesce_steps=10_000)

        async def main():
            fe.start()
            futs = [await fe.submit(get(10 + i)) for i in range(8)]
            await fe.drain()
            await fe.close()
            return futs

        futs = loop.run_until_complete(main())
        assert fe.stats.flushes == 2
        assert fe.stats.flushed_ops == 8
        assert fe.stats.completed == 8
        assert all(isinstance(f.result(), bool) for f in futs)

    def test_flush_on_timeout(self):
        loop = VirtualLoop()
        fe = build(loop, coalesce_size=32, coalesce_steps=50)

        async def main():
            fe.start()
            await fe.submit(get(10))
            await fe.submit(get(11))
            await fe.drain()
            await fe.close()

        loop.run_until_complete(main())
        assert fe.stats.flushes == 1          # one batch, not two
        assert fe.stats.completed == 2
        # The flush waited out the coalesce window before executing.
        assert min(fe.stats.point_latencies) >= 50

    def test_results_match_the_structure(self):
        loop = VirtualLoop()
        fe = build(loop, coalesce_size=2, coalesce_steps=20)
        fe.structure.insert(400, value=7)
        fe.structure.delete(401)

        async def main():
            fe.start()
            hit = await fe.submit(get(400))
            miss = await fe.submit(get(401))
            await fe.drain()
            await fe.close()
            return hit, miss

        hit, miss = loop.run_until_complete(main())
        assert hit.result() is True
        assert miss.result() is False


class TestAdmissionLadder:
    def test_token_bucket_rejects_past_burst(self):
        loop = VirtualLoop()
        fe = build(loop, admit_rate=1.0, admit_burst=1.0)

        async def main():
            first = await fe.submit(get(10))
            second = await fe.submit(get(11))
            return first, second

        first, second = loop.run_until_complete(main())
        assert not first.done()               # queued, awaiting dispatch
        exc = second.exception()
        assert isinstance(exc, Overloaded) and exc.reason == "admission"
        assert fe.stats.rejected == 1

    def test_backpressure_then_queue_full(self):
        loop = VirtualLoop()
        fe = build(loop, queue_depth=1, backpressure_steps=50)

        async def main():
            await fe.submit(get(10))
            return await fe.submit(get(11))

        fut = loop.run_until_complete(main())
        assert loop.now == 50                 # waited the bounded window
        exc = fut.exception()
        assert isinstance(exc, Overloaded) and exc.reason == "queue-full"

    def test_slow_client_rejected_at_submit(self):
        loop = VirtualLoop()
        fe = build(loop)
        client = ClientState(cid=0, delivery=Queue(loop, 1))
        client.delivery.put_nowait("unread response")

        async def main():
            return await fe.submit(get(10, client=client))

        fut = loop.run_until_complete(main())
        exc = fut.exception()
        assert isinstance(exc, Overloaded) and exc.reason == "slow-client"

    def test_client_inflight_cap(self):
        loop = VirtualLoop()
        fe = build(loop)
        client = ClientState(cid=0, max_inflight=2)

        async def main():
            futs = [await fe.submit(get(10 + i, client=client))
                    for i in range(3)]
            return futs

        futs = loop.run_until_complete(main())
        assert not futs[0].done() and not futs[1].done()
        exc = futs[2].exception()
        assert isinstance(exc, Overloaded) \
            and exc.reason == "client-inflight"

    def test_slow_client_response_dropped_not_wedged(self):
        loop = VirtualLoop()
        fe = build(loop, coalesce_size=2, coalesce_steps=20)
        client = ClientState(cid=0, delivery=Queue(loop, 1))

        async def main():
            fe.start()
            a = await fe.submit(get(10, client=client))
            b = await fe.submit(get(11, client=client))
            await fe.drain()
            await fe.close()
            return a, b

        a, b = loop.run_until_complete(main())
        # Both requests completed; the second response had nowhere to
        # go and was dropped (counted) instead of blocking the flusher.
        assert a.done() and b.done()
        assert fe.stats.completed == 2
        assert fe.stats.slow_client_drops == 1


class TestRangeShedding:
    def test_shed_on_point_queue_occupancy(self):
        loop = VirtualLoop()
        fe = build(loop, queue_depth=2, shed_occupancy=0.5)

        async def main():
            await fe.submit(get(10))          # occupancy hits 1/2
            return await fe.submit(Request(kind=RANGE, key=1, hi=64))

        fut = loop.run_until_complete(main())
        exc = fut.exception()
        assert isinstance(exc, Overloaded) and exc.reason == "shed-range"
        assert fe.stats.shed == 1 and fe.stats.rejected == 0

    def test_shed_when_token_reserve_is_gone(self):
        loop = VirtualLoop()
        fe = build(loop, admit_rate=1.0, admit_burst=1.0,
                   range_reserve=0.5)

        async def main():
            await fe.submit(get(10))          # drains the bucket
            return await fe.submit(Request(kind=RANGE, key=1, hi=64))

        fut = loop.run_until_complete(main())
        exc = fut.exception()
        assert isinstance(exc, Overloaded) and exc.reason == "shed-range"

    def test_range_completes_when_healthy(self):
        loop = VirtualLoop()
        fe = build(loop)
        fe.structure.insert(100, value=1)
        fe.structure.insert(120, value=2)

        async def main():
            fe.start()
            fut = await fe.submit(Request(kind=RANGE, key=90, hi=130))
            await fe.drain()
            await fe.close()
            return fut

        fut = loop.run_until_complete(main())
        rows = fut.result()
        assert [k for k, _v in rows if k in (100, 120)] == [100, 120]
        assert fe.stats.completed == 1


class TestBreakerAndRetry:
    def test_retry_rides_out_a_frozen_window(self):
        loop = VirtualLoop()
        fe = frozen_frontend(
            loop, (0, 0, 50), coalesce_size=2, coalesce_steps=20,
            breaker_threshold=10,
            retry=RetryPolicy(max_attempts=5, base_steps=100, jitter=0.0,
                              seed=3))

        async def main():
            fe.start()
            a = await fe.submit(get(10))
            b = await fe.submit(get(11))
            await fe.drain()
            await fe.close()
            return a, b

        a, b = loop.run_until_complete(main())
        assert isinstance(a.result(), bool)
        assert isinstance(b.result(), bool)
        assert fe.stats.retries >= 1
        assert fe.stats.failed == 0
        assert fe.faults.counts["frozen_shard"] >= 1

    def test_breaker_opens_then_fast_fails(self):
        loop = VirtualLoop()
        fe = frozen_frontend(
            loop, (0, 0, 10**6), coalesce_size=4, coalesce_steps=20,
            breaker_threshold=2, breaker_reset_steps=10**5,
            retry=RetryPolicy(max_attempts=2, base_steps=10, jitter=0.0,
                              seed=1))

        async def main():
            fe.start()
            futs = [await fe.submit(get(10 + i)) for i in range(3)]
            await fe.drain()
            late = await fe.submit(get(20))
            return futs, late

        futs, late = loop.run_until_complete(main())
        assert all(isinstance(f.exception(), ShardFrozen) for f in futs)
        assert fe.stats.failed == 3
        assert fe.stats.retries == 1
        assert fe.stats.breaker_opens == 1
        # With the breaker open, new work fails fast at submit.
        assert isinstance(late.exception(), CircuitOpen)
        assert fe.stats.breaker_fastfail == 1

    def test_half_open_probe_recovers(self):
        loop = VirtualLoop()
        fe = frozen_frontend(
            loop, (0, 0, 100), coalesce_size=1, coalesce_steps=10,
            breaker_threshold=1, breaker_reset_steps=200,
            retry=RetryPolicy.bounded(1))

        async def main():
            fe.start()
            doomed = await fe.submit(get(10))
            await loop.sleep(400)      # past the window and the reset
            probe = await fe.submit(get(11))
            await fe.drain()
            await fe.close()
            return doomed, probe

        doomed, probe = loop.run_until_complete(main())
        assert isinstance(doomed.exception(), ShardFrozen)
        assert isinstance(probe.result(), bool)
        assert fe.breakers[0].state == "closed"
        assert fe.stats.breaker_opens == 1
        assert fe.stats.completed == 1


def test_every_submission_gets_a_future():
    """submit() never returns an unresolvable future: whatever path a
    request takes, the sum of terminal counters equals submissions."""
    loop = VirtualLoop()
    fe = build(loop, queue_depth=2, admit_rate=4.0, admit_burst=4.0,
               coalesce_size=2, coalesce_steps=30, backpressure_steps=40)
    client = ClientState(cid=0, max_inflight=3)

    async def main():
        fe.start()
        futs = []
        for i in range(12):
            futs.append(await fe.submit(get(50 + i, client=client)))
        futs.append(await fe.submit(Request(kind=RANGE, key=1, hi=64)))
        await fe.drain()
        await fe.close()
        return futs

    futs = loop.run_until_complete(main())
    assert all(f.done() for f in futs)
    st = fe.stats
    assert st.terminated == st.submitted == len(futs)
