"""MigrationExecutor: online key-range moves between co-located shards."""

import pytest

from repro.serve.aio import VirtualLoop
from repro.shard import MigrationConfig, MigrationExecutor, build_sharded
from repro.workloads import MIX_10_10_80, generate


def _sharded(n_shards=3, headroom=2.0, seed=5, team_size=32):
    w = generate(MIX_10_10_80, key_range=3_000, n_ops=200, seed=seed)
    return build_sharded("gfsl", n_shards, w, partitioner="range",
                         headroom=headroom, team_size=team_size)


def _run(loop, coro, max_steps=200_000):
    return loop.run_until_complete(coro, max_steps=max_steps)


class FaultStub:
    """The slice of ServeFaultInjector the executor consults."""

    def __init__(self, frozen_until=None, aborts=0):
        self.frozen_until = frozen_until or {}
        self.aborts_left = aborts
        self.abort_calls = 0

    def frozen(self, sid, now):
        return now < self.frozen_until.get(sid, -1)

    def abort_migration(self):
        self.abort_calls += 1
        if self.aborts_left > 0:
            self.aborts_left -= 1
            return True
        return False


def test_migrate_moves_the_range_and_preserves_contents():
    sm = _sharded()
    before = sm.items()
    (lo, hi, owner) = sm.routing.segments(sid=0)[0]
    lo, hi = lo, min(hi, lo + 400)
    loop = VirtualLoop()
    ex = MigrationExecutor(sm, loop)

    assert _run(loop, ex.migrate(0, 2, lo, hi)) is True
    assert sm.routing.generation == 1
    assert sm.items() == before, "migration changed the map contents"
    moved = [k for k, _v in before if lo <= k <= hi]
    src_local = {k for k, _v in sm.shards[0].items()}
    dst_local = {k for k, _v in sm.shards[2].items()}
    assert not src_local & set(moved), "source still holds donated keys"
    assert set(moved) <= dst_local, "destination is missing moved keys"
    for k in moved[:10]:
        assert sm.shard_of(k) == 2
        assert sm.contains(k)
    [event] = ex.events
    assert event["status"] == "published" and event["generation"] == 1
    assert event["moved_keys"] == len(moved)
    assert event["reconciled"] == 0


def test_writes_during_the_copy_phase_arrive_via_the_delta():
    sm = _sharded()
    lo, hi = 1, 500
    loop = VirtualLoop()
    ex = MigrationExecutor(sm, loop, config=MigrationConfig(
        copy_slice=16, slice_steps=50))
    new_key = 123
    gone_key = next(k for k, _v in sm.items() if lo <= k <= hi
                    and k != new_key)

    async def main():
        task = loop.create_task(ex.migrate(0, 1, lo, hi), "mig")
        await loop.sleep(60)            # inside the costed copy phase
        assert sm.insert(new_key, 77) or sm.delete(new_key)
        sm.insert(new_key, 77)
        sm.delete(gone_key)
        return await task

    assert _run(loop, main()) is True
    [event] = ex.events
    assert event["status"] == "published"
    assert event["delta_ops"] >= 2, "copy-phase writes missed the capture"
    assert event["reconciled"] == 0
    assert sm.contains(new_key) and not sm.contains(gone_key)
    assert sm.shard_of(new_key) == 1
    dst_local = dict(sm.shards[1].items())
    assert dst_local.get(new_key) == 77
    assert gone_key not in dst_local


def test_injected_abort_is_clean_and_the_retry_publishes():
    sm = _sharded()
    before = sm.items()
    faults = FaultStub(aborts=1)
    loop = VirtualLoop()
    ex = MigrationExecutor(sm, loop, faults=faults)

    assert _run(loop, ex.migrate(0, 1, 1, 600)) is True
    statuses = [e["status"] for e in ex.events]
    assert statuses == ["aborted", "published"]
    assert ex.events[1]["attempt"] == 2
    assert sm.items() == before
    assert sm.routing.generation == 1


def test_frozen_shard_defers_the_attempt():
    sm = _sharded()
    loop = VirtualLoop()
    cfg = MigrationConfig(retry_backoff_steps=100)
    faults = FaultStub(frozen_until={1: 150})
    ex = MigrationExecutor(sm, loop, config=cfg, faults=faults)

    assert _run(loop, ex.migrate(0, 1, 1, 400)) is True
    statuses = [e["status"] for e in ex.events]
    assert statuses[0] == "frozen" and statuses[-1] == "published"


def test_exhausted_attempts_fail_without_mutating():
    sm = _sharded()
    before = sm.items()
    loop = VirtualLoop()
    faults = FaultStub(aborts=99)
    ex = MigrationExecutor(sm, loop, config=MigrationConfig(max_attempts=2),
                           faults=faults)

    assert _run(loop, ex.migrate(0, 1, 1, 400)) is False
    assert [e["status"] for e in ex.events] \
        == ["aborted", "aborted", "failed"]
    assert sm.items() == before
    assert sm.routing.generation == 0


def test_capacity_precheck_aborts_before_touching_either_shard():
    # headroom=1.0 + small chunks size each shard's pool for its own
    # keys only, so donating a whole neighbouring segment cannot fit.
    sm = _sharded(headroom=1.0, team_size=8)
    before = sm.items()
    per_shard = [sorted(k for k, _v in s.items()) for s in sm.shards]
    (lo, hi, _owner) = sm.routing.segments(sid=0)[0]
    loop = VirtualLoop()
    ex = MigrationExecutor(sm, loop)

    assert _run(loop, ex.migrate(0, 1, lo, hi)) is False
    [event] = ex.events
    assert event["status"] == "aborted-capacity"
    assert sm.routing.generation == 0
    assert sm.items() == before
    assert [sorted(k for k, _v in s.items()) for s in sm.shards] \
        == per_shard, "a shard was rebuilt despite the failed precheck"


def test_same_shard_move_is_rejected():
    sm = _sharded()
    ex = MigrationExecutor(sm, VirtualLoop())
    with pytest.raises(ValueError, match="same"):
        _run(VirtualLoop(), ex.migrate(1, 1, 1, 10))
