"""Batch-router unit tests: stable ids, round-robin, wave zipping."""

import numpy as np

from repro.shard import merge_waves, round_robin_order, split_indices


def test_split_indices_partitions_and_preserves_order():
    ids = np.array([0, 2, 1, 0, 2, 2, 1, 0])
    per_shard = split_indices(ids, 3)
    assert [ix.tolist() for ix in per_shard] \
        == [[0, 3, 7], [2, 6], [1, 4, 5]]
    # Every op id appears exactly once.
    merged = sorted(i for ix in per_shard for i in ix.tolist())
    assert merged == list(range(len(ids)))


def test_round_robin_order_deals_one_per_shard():
    per_shard = [np.array([0, 3, 7]), np.array([2, 6]), np.array([1, 4, 5])]
    order = round_robin_order(per_shard)
    assert order.tolist() == [0, 2, 1, 3, 6, 4, 7, 5]


def test_round_robin_order_single_shard_is_identity():
    order = round_robin_order([np.arange(6, dtype=np.int64)])
    assert order.tolist() == [0, 1, 2, 3, 4, 5]


def test_round_robin_order_empty():
    assert round_robin_order([]).tolist() == []
    assert round_robin_order([np.zeros(0, dtype=np.int64)]).tolist() == []


def test_merge_waves_zips_by_wave_index():
    merged = merge_waves([[[0, 2], [4]], [[1], [3], [5]]])
    assert merged == [[0, 2, 1], [4, 3], [5]]
    # Single-shard plan passes through untouched.
    assert merge_waves([[[7, 8], [9]]]) == [[7, 8], [9]]
    # Empty global waves are dropped.
    assert merge_waves([[], []]) == []


def test_merge_waves_tolerates_idle_shards_with_no_waves():
    # A migrated-away or idle shard contributes an *empty* wave list —
    # zip() must not silently truncate the other shards' waves.
    merged = merge_waves([[[0, 2], [4]], []])
    assert merged == [[0, 2], [4]]
    assert merge_waves([[], [[1], [3]], []]) == [[1], [3]]
    # All shards idle: no waves at all.
    assert merge_waves([]) == []
    assert merge_waves([[], [], []]) == []
