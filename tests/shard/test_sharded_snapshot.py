"""Cross-shard consistent cuts over a :class:`ShardedMap` (DESIGN.md §13).

All shards share one :class:`GPUContext`, hence one epoch manager — so
a :class:`ShardedSnapshot` is **one** pin freezing every shard at the
same instant.  The capability is gated: a partitioned map over shards
without snapshot support must not grow the API.
"""

import numpy as np
import pytest

from repro.engine import OpBatch, make_structure
from repro.engine.batch import OP_DELETE, OP_INSERT
from repro.workloads import MIX_10_10_80, generate


def sharded(kind="gfsl@4", seed=2, n_keys=160):
    wl = generate(MIX_10_10_80, key_range=1000, n_ops=16, seed=seed)
    sm = make_structure(kind, wl, seed=seed)
    for k in range(1, n_keys + 1):
        sm.insert(k * 5, value=k)
    return sm


class TestCrossShardCut:
    def test_single_pin_freezes_every_shard(self):
        sm = sharded()
        mgr = sm.ctx.epochs
        pre = sm.items()
        with sm.begin_snapshot() as snap:
            assert mgr.active_pins == 1            # one pin, four shards
            assert len(snap.views) == sm.n_shards
            for k in range(1, 400, 7):             # hits every shard
                sm.insert(k, value=0)
            for k in range(5, 400, 35):
                sm.delete(k)
            assert snap.items() == sorted(pre)
            assert snap.range_query(50, 500) == [
                kv for kv in sorted(pre) if 50 <= kv[0] <= 500]
        assert mgr.active_pins == 0

    def test_range_query_rebased_onto_one_cut(self):
        sm = sharded()
        assert hasattr(sm, "begin_snapshot")
        expect = [kv for kv in sorted(sm.items()) if 100 <= kv[0] <= 600]
        assert sm.range_query(100, 600) == expect
        assert sm.snapshot_range_query(100, 600) == expect

    def test_release_reclaims_and_uninstalls(self):
        sm = sharded()
        mgr = sm.ctx.epochs
        snap = sm.begin_snapshot()
        for k in range(1, 200, 3):
            sm.insert(k, value=9)
        assert mgr.retained > 0
        snap.release()
        assert mgr.retained == mgr.reclaimed
        assert not mgr._versions and not mgr._last_mod
        assert sm.ctx.mem.write_barrier is None

    def test_snapshot_view_epochs_match_across_shards(self):
        sm = sharded()
        with sm.begin_snapshot() as snap:
            epochs = {v.epoch for v in snap.views}
            assert epochs == {snap.epoch}


class TestCapabilityGate:
    def test_mc_shards_expose_no_snapshot_api(self):
        """M&C shards have no snapshot_view → the partitioned map keeps
        the capability off and range_query degrades (M&C itself has no
        range_query either — pre-existing shape, asserted so a future
        change is a conscious one)."""
        sm = sharded(kind="mc@2", n_keys=40)
        assert not hasattr(sm, "begin_snapshot")
        assert not hasattr(sm, "snapshot_items")
        assert len(sm.items()) > 0
        assert sm.range_query(1, 1000) == []


class TestShardedBatchCommit:
    def test_batch_commit_all_or_nothing_across_shards(self):
        sm = sharded()
        pre = sorted(sm.items())
        keys = np.arange(1001, 1061)               # spread over shards
        batch = OpBatch(ops=np.full(keys.size, OP_INSERT), keys=keys,
                        values=keys * 2)
        mgr = sm.ctx.epochs
        with mgr.commit():
            snap = sm.begin_snapshot()
            sm.execute_batch(batch, backend="vectorized", commit="batch")
            assert snap.items() == pre             # invisible mid-commit
        try:
            assert snap.items() == pre
        finally:
            snap.release()
        post = dict(sm.items())
        assert all(post.get(int(k)) == int(k) * 2 for k in keys)
        assert mgr.epoch > 1 and mgr.active_pins == 0

    def test_batch_commit_deletes_flip_with_inserts(self):
        sm = sharded()
        live = [k for k, _ in sorted(sm.items())][:20]
        ins = np.arange(2001, 2021)
        ops = np.concatenate([np.full(ins.size, OP_INSERT),
                              np.full(len(live), OP_DELETE)])
        batch = OpBatch(ops=ops, keys=np.concatenate([ins, np.array(live)]),
                        values=np.concatenate([ins, np.zeros(len(live),
                                                             dtype=np.int64)]))
        sm.execute_batch(batch, backend="interleaved", commit="batch")
        post = dict(sm.items())
        assert all(int(k) in post for k in ins)
        assert all(k not in post for k in live)


class TestSnapshotsDuringConcurrentKernels:
    def test_cut_stable_across_interleaved_wave(self):
        """A snapshot held across a genuinely interleaved multi-shard
        kernel launch stays frozen."""
        sm = sharded()
        pre = sorted(sm.items())
        gens = [sm.insert_gen(k) for k in range(3, 900, 11)]
        with sm.begin_snapshot() as snap:
            sm.ctx.run_concurrent(gens, seed=3)
            assert snap.items() == pre
        assert len(sm.items()) > len(pre)


def test_mc_snapshot_reader_request_rejected_by_chaos():
    from repro.chaos.backend import ChaosBackend

    be = ChaosBackend(seed=1, snapshot_readers=1)
    sm = sharded(kind="mc@2", n_keys=10)
    wl = generate(MIX_10_10_80, key_range=100, n_ops=8, seed=1)
    with pytest.raises(ValueError, match="snapshot"):
        be.execute(sm, wl.to_batch())
