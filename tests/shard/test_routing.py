"""RoutingTable: versioned boundary maps over a static partitioner."""

import numpy as np
import pytest

from repro.shard import RoutingTable, make_partitioner

KEY_RANGE = 4_096


def _table(n_shards=4, kind="range"):
    return RoutingTable(make_partitioner(kind, n_shards, KEY_RANGE))


def test_generation_zero_delegates_to_the_partitioner():
    for kind in ("range", "hash"):
        rt = _table(kind=kind)
        keys = np.arange(1, KEY_RANGE + 1, dtype=np.int64)
        assert rt.generation == 0
        np.testing.assert_array_equal(
            rt.shard_of_array(keys), rt.partitioner.shard_of_array(keys))
        for k in (1, 17, KEY_RANGE):
            assert rt.shard_of(k) == rt.partitioner.shard_of(k)


def test_publish_move_rewrites_owners_inside_the_range_only():
    rt = _table()
    keys = np.arange(1, KEY_RANGE + 1, dtype=np.int64)
    before = rt.partitioner.shard_of_array(keys)
    lo, hi = 100, 300
    gen = rt.publish_move(lo, hi, dst=3, step=42)
    assert gen == rt.generation == 1
    after = rt.shard_of_array(keys)
    inside = (keys >= lo) & (keys <= hi)
    assert (after[inside] == 3).all()
    np.testing.assert_array_equal(after[~inside], before[~inside])
    # The old plan is still queryable by generation.
    np.testing.assert_array_equal(rt.shard_of_array(keys, 0), before)
    assert rt.history == [{"generation": 1, "lo": 100, "hi": 300,
                           "dst": 3, "src": [0], "step": 42}]


def test_moves_compose_and_scalar_matches_vector():
    rt = _table()
    rng = np.random.default_rng(7)
    for _ in range(6):
        lo = int(rng.integers(1, KEY_RANGE - 10))
        hi = int(rng.integers(lo, KEY_RANGE))
        rt.publish_move(lo, hi, dst=int(rng.integers(0, 4)))
    keys = np.arange(1, KEY_RANGE + 1, dtype=np.int64)
    vec = rt.shard_of_array(keys)
    sample = rng.choice(keys, size=64, replace=False)
    for k in sample:
        assert rt.shard_of(int(k)) == vec[int(k) - 1]


def test_segments_cover_the_key_space_and_coalesce():
    rt = _table()
    rt.publish_move(100, 300, dst=3)
    segs = rt.segments()
    # Contiguous cover starting at key 1, no equal-owner neighbours.
    assert segs[0][0] == 1
    for (lo_a, hi_a, own_a), (lo_b, _hi_b, own_b) in zip(segs, segs[1:]):
        assert lo_b == hi_a + 1
        assert own_a != own_b
    # Donating the range back to its original owner coalesces fully.
    rt.publish_move(100, 300, dst=0)
    assert rt.segments() == rt.segments(generation=0)
    assert rt.segments(sid=2) == [
        (lo, hi, own) for lo, hi, own in rt.segments() if own == 2]


def test_hash_partitioner_cannot_migrate_but_still_routes():
    rt = _table(kind="hash")
    with pytest.raises(ValueError, match="range-expressible"):
        rt.publish_move(10, 20, dst=1)
    assert rt.generation == 0
    assert rt.shard_of(55) == rt.partitioner.shard_of(55)


def test_publish_move_validates_inputs():
    rt = _table()
    with pytest.raises(ValueError, match="out of range"):
        rt.publish_move(1, 2, dst=4)
    with pytest.raises(ValueError, match="empty"):
        rt.publish_move(20, 10, dst=1)
