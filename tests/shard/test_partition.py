"""Partitioner unit tests: totality, determinism, balance."""

import numpy as np
import pytest

from repro.shard import (HashPartitioner, Partitioner, RangePartitioner,
                         make_partitioner)

ALL_KINDS = ("range", "hash")


@pytest.mark.parametrize("kind", ALL_KINDS)
def test_total_and_deterministic(kind):
    part = make_partitioner(kind, 4, 10_000)
    keys = np.arange(1, 10_001, dtype=np.int64)
    ids = part.shard_of_array(keys)
    assert ids.min() >= 0 and ids.max() < 4
    # Scalar path agrees with the vectorized path.
    sample = keys[:: 977]
    assert [part.shard_of(int(k)) for k in sample] \
        == part.shard_of_array(sample).tolist()
    # Same key always lands on the same shard.
    assert np.array_equal(ids, part.shard_of_array(keys))


def test_range_partitioner_is_contiguous_and_balanced():
    part = RangePartitioner(4, 1000)
    ids = part.shard_of_array(np.arange(1, 1001, dtype=np.int64))
    # Contiguous: shard ids are non-decreasing over sorted keys.
    assert np.all(np.diff(ids) >= 0)
    # Balanced within one key for a uniform range.
    counts = np.bincount(ids, minlength=4)
    assert counts.max() - counts.min() <= 1
    # Keys past the sizing hint overflow into the last shard.
    assert part.shard_of(10**6) == 3


def test_hash_partitioner_balances_clustered_keys():
    part = HashPartitioner(4)
    clustered = np.arange(1, 2001, dtype=np.int64)  # one dense run
    counts = np.bincount(part.shard_of_array(clustered), minlength=4)
    assert counts.min() > 0.15 * clustered.size  # no starved shard


def test_make_partitioner_validation():
    with pytest.raises(ValueError):
        make_partitioner("nope", 2, 100)
    ready = RangePartitioner(2, 100)
    assert make_partitioner(ready, 2, 100) is ready
    with pytest.raises(ValueError):
        make_partitioner(ready, 4, 100)  # shard-count mismatch
    with pytest.raises(TypeError):
        make_partitioner(42, 2, 100)
    assert isinstance(ready, Partitioner)  # protocol conformance
