"""Differential: a 1-shard ShardedMap IS the bare structure.

The sharding layer's no-op contract: with ``shards=1`` the partitioner
routes everything to shard 0, the round-robin batch order is the
identity, the per-shard wave plan equals the global plan, and the
single instance is placed at base 0 of an identically-sized context —
so every backend must produce *identical* per-op results, final
contents, full operation counters, and full tracer statistics to the
bare structure.  Any divergence means the shard path perturbs
scheduling and its S > 1 numbers measure the perturbation, not
sharding.
"""

import dataclasses

import pytest

from repro.engine import (BACKEND_NAMES, OpBatch, available_structures,
                          make_backend, make_structure)
from repro.shard import ShardedMap
from repro.workloads import MIX_10_10_80, generate

BACKENDS = tuple(b for b in BACKEND_NAMES if b != "interleaved-chaos")


def _workload(seed=13):
    return generate(MIX_10_10_80, key_range=2_048, n_ops=400, seed=seed)


def _run(kind, workload, backend, **kwargs):
    st = make_structure(kind, workload, seed=0, **kwargs)
    st.ctx.tracer.reset_stats()
    st.op_stats.reset()
    res = make_backend(backend).execute(st, OpBatch.from_workload(workload))
    op_stats = {f: getattr(st.op_stats, f)
                for f in type(st.op_stats).__dataclass_fields__}
    trace = dataclasses.asdict(st.ctx.tracer.stats)
    return st, res.results, op_stats, trace


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("kind", available_structures())
def test_one_shard_is_identical_to_bare(kind, backend):
    w = _workload()
    bare, bare_res, bare_ops, bare_trace = _run(kind, w, backend)
    shrd, shrd_res, shrd_ops, shrd_trace = _run(kind, w, backend, shards=1)
    assert isinstance(shrd, ShardedMap) and not isinstance(bare, ShardedMap)
    assert shrd_res == bare_res, "per-op results diverge"
    assert shrd.keys() == bare.keys(), "final key set diverges"
    assert shrd.items() == bare.items(), "final contents diverge"
    assert shrd_ops == bare_ops, "operation counters diverge"
    assert shrd_trace == bare_trace, "tracer statistics diverge"


@pytest.mark.parametrize("kind", available_structures())
def test_one_shard_context_matches_bare_sizing(kind):
    w = _workload()
    bare = make_structure(kind, w, seed=0)
    shrd = make_structure(f"{kind}@1", w, seed=0)
    assert shrd.ctx.mem.num_words == bare.ctx.mem.num_words
    inner = shrd.shards[0]
    assert (inner.layout.base if hasattr(inner, "layout")
            else inner.pool.base) == 0
