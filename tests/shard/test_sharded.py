"""ShardedMap behavior: co-location, routing, aggregation, gating."""

import numpy as np
import pytest

from repro.engine import OpBatch, make_backend, make_structure
from repro.metrics.counters import MetricsCollector
from repro.shard import ShardedMap, build_sharded
from repro.workloads import MIX_10_10_80, generate


def _workload(seed=9, key_range=3_000, n_ops=300):
    return generate(MIX_10_10_80, key_range=key_range, n_ops=n_ops,
                    seed=seed)


def test_shards_are_colocated_on_one_context():
    w = _workload()
    sm = build_sharded("gfsl", 4, w)
    assert isinstance(sm, ShardedMap) and sm.n_shards == 4
    ctxs = {id(s.ctx) for s in sm.shards}
    assert ctxs == {id(sm.ctx)}, "all shards share one GPUContext"
    bases = [s.layout.base for s in sm.shards]
    assert sorted(bases) == bases and len(set(bases)) == 4
    # Regions are disjoint and fit the shared memory.
    for s, base in zip(sm.shards, bases):
        assert base + s.layout.total_words <= sm.ctx.mem.num_words
    for a, b in zip(sm.shards, sm.shards[1:]):
        assert a.layout.base + a.layout.total_words <= b.layout.base


def test_routing_matches_reference_model():
    w = _workload()
    sm = build_sharded("gfsl", 3, w)
    model = {int(k): 0 for k in w.prefill}
    assert sorted(model) == sm.keys()
    rng = np.random.default_rng(0)
    for _ in range(150):
        k = int(rng.integers(1, w.key_range + 1))
        op = rng.choice(["insert", "delete", "contains"])
        if op == "insert":
            assert sm.insert(k, k) == (k not in model)
            model.setdefault(k, k)
        elif op == "delete":
            assert sm.delete(k) == (k in model)
            model.pop(k, None)
        else:
            assert sm.contains(k) == (k in model)
    assert sm.keys() == sorted(model)
    assert len(sm) == len(model)
    assert sm.items() == sorted(model.items())


def test_cross_shard_queries():
    w = _workload()
    sm = build_sharded("gfsl", 4, w)
    keys = sm.keys()
    assert sm.min_key() == keys[0] and sm.max_key() == keys[-1]
    lo, hi = keys[5], keys[25]
    window = sm.range_query(lo, hi)
    assert [k for k, _ in window] == [k for k in keys if lo <= k <= hi]


def test_vector_kernels_gated_on_shard_capability():
    w = _workload()
    g = build_sharded("gfsl", 2, w)
    m = build_sharded("mc", 2, w)
    assert hasattr(g, "vector_contains") and hasattr(g, "vector_search")
    assert not hasattr(m, "vector_contains")
    assert not hasattr(m, "vector_search")
    present = np.asarray(g.keys()[:10], dtype=np.int64)
    absent = np.asarray([w.key_range + 50], dtype=np.int64)
    assert g.vector_contains(present).all()
    assert not g.vector_contains(absent).any()


def test_aggregate_op_stats_reads_and_resets():
    w = _workload()
    sm = build_sharded("gfsl", 2, w)
    sm.op_stats.reset()
    for k in sm.keys()[:6]:
        sm.contains(k)
    assert sm.op_stats.contains_calls == 6
    assert sum(s.op_stats.contains_calls for s in sm.shards) == 6
    with pytest.raises(AttributeError):
        sm.op_stats.contains_calls = 0  # aggregate is read-only
    sm.op_stats.reset()
    assert sm.op_stats.contains_calls == 0


def test_metrics_fan_out_and_merge_on_detach():
    w = _workload()
    sm = build_sharded("gfsl", 2, w)
    collector = MetricsCollector()
    sm.metrics = collector
    assert sm.shard_metrics is not None and len(sm.shard_metrics) == 2
    assert all(s.metrics is child
               for s, child in zip(sm.shards, sm.shard_metrics))
    batch = OpBatch.from_workload(w)
    make_backend("interleaved").execute(sm, batch)
    per_shard = [c.chunk_reads for c in sm.shard_metrics]
    sm.metrics = None  # detach folds the children into the aggregate
    assert all(s.metrics is None for s in sm.shards)
    assert collector.chunk_reads == sum(per_shard) > 0
    assert collector.waves > 0  # backend wrote wave counters directly


def test_chaos_propagates_to_all_shards():
    w = _workload()
    sm = build_sharded("gfsl", 2, w)
    marker = object()
    sm.chaos = marker
    assert all(s.chaos is marker for s in sm.shards)
    sm.chaos = None
    assert all(s.chaos is None for s in sm.shards)


def test_batch_order_and_wave_plan_cover_batch():
    w = _workload()
    sm = build_sharded("gfsl", 4, w)
    batch = OpBatch.from_workload(w)
    order = sm.batch_order(batch)
    assert sorted(order.tolist()) == list(range(len(batch)))
    assert sm.last_shard_ops is not None
    assert sum(sm.last_shard_ops) == len(batch)
    waves = sm.plan_waves(batch.keys, 64)
    flat = [i for wave in waves for i in wave]
    assert sorted(flat) == list(range(len(batch)))
    for wave in waves:  # keys unique inside every global wave
        ks = [int(batch.keys[i]) for i in wave]
        assert len(ks) == len(set(ks))


def test_make_structure_shard_forms():
    w = _workload()
    via_suffix = make_structure("gfsl@2", w)
    via_kwarg = make_structure("gfsl", w, shards=2)
    assert isinstance(via_suffix, ShardedMap)
    assert isinstance(via_kwarg, ShardedMap)
    assert via_suffix.keys() == via_kwarg.keys()
    hashed = make_structure("gfsl", w, shards=2, partitioner="hash")
    assert hashed.keys() == via_kwarg.keys()
    with pytest.raises(ValueError):
        make_structure("gfsl@2", w, shards=4)  # conflicting counts
    with pytest.raises(ValueError):
        make_structure("gfsl@x", w)
    with pytest.raises(ValueError):
        build_sharded("nope", 2, w)
    with pytest.raises(ValueError):
        build_sharded("gfsl", 0, w)


def test_sharded_execute_batch_matches_sequential_reference():
    w = _workload(seed=21)
    batch = OpBatch.from_workload(w)
    sm = build_sharded("gfsl", 4, w, seed=3)
    ref = make_structure("gfsl", w, seed=3)
    out = sm.execute_batch(batch, backend="vectorized")
    ref_out = make_backend("sequential").execute(ref, batch)
    assert out.results == ref_out.results
    assert sm.keys() == ref.keys()


def test_aggregate_queries_at_three_shards_match_the_bare_structure():
    # S=3: boundaries don't align with powers of two, so off-by-one
    # segment arithmetic in routing/range assembly shows up here.
    w = _workload()
    bare = make_structure("gfsl", w, seed=0)
    sm = build_sharded("gfsl", 3, w)
    assert sm.keys() == bare.keys()
    assert sm.items() == bare.items()
    assert sm.min_key() == bare.min_key()
    assert sm.max_key() == bare.max_key()
    keys = bare.keys()
    spans = [(keys[0], keys[-1]),                    # everything
             (keys[2], keys[len(keys) // 2]),        # straddles shards
             (keys[-3], keys[-1]),                   # inside one shard
             (w.key_range + 1, w.key_range + 50)]    # empty window
    for lo, hi in spans:
        assert sm.range_query(lo, hi) == bare.range_query(lo, hi), \
            f"range [{lo}, {hi}] diverges at S=3"
    assert len(sm) == len(bare)
