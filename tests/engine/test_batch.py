"""Unit tests for the SoA operation batch."""

import numpy as np
import pytest

from repro.engine import (OP_CONTAINS, OP_DELETE, OP_INSERT, OpBatch)
from repro.workloads import MIX_10_10_80, Op, generate


class TestOpCodes:
    def test_codes_match_workload_enum(self):
        """The engine re-declares the op codes as ints (to stay
        importable without the workloads package); they must track
        ``workloads.Op`` by value."""
        assert OP_CONTAINS == int(Op.CONTAINS)
        assert OP_INSERT == int(Op.INSERT)
        assert OP_DELETE == int(Op.DELETE)


class TestConstruction:
    def test_zero_copy_from_workload(self):
        w = generate(MIX_10_10_80, key_range=1000, n_ops=200, seed=1)
        b = OpBatch.from_workload(w)
        assert np.shares_memory(b.ops, w.ops)
        assert np.shares_memory(b.keys, w.keys)
        assert np.shares_memory(b.values, w.values)
        assert len(b) == 200

    def test_values_default_to_zero(self):
        b = OpBatch(ops=[OP_INSERT, OP_DELETE], keys=[1, 2])
        assert b.values.tolist() == [0, 0]
        assert b.values.dtype == np.int64

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            OpBatch(ops=[OP_INSERT], keys=[1, 2])
        with pytest.raises(ValueError):
            OpBatch(ops=[OP_INSERT], keys=[1], values=[1, 2])

    def test_bad_opcode_rejected(self):
        with pytest.raises(ValueError):
            OpBatch(ops=[7], keys=[1])

    def test_multidimensional_rejected(self):
        with pytest.raises(ValueError):
            OpBatch(ops=[[OP_INSERT]], keys=[[1]])

    def test_from_pairs(self):
        b = OpBatch.from_pairs([(OP_INSERT, 10, 99), (OP_CONTAINS, 10)])
        assert b.ops.tolist() == [OP_INSERT, OP_CONTAINS]
        assert b.keys.tolist() == [10, 10]
        assert b.values.tolist() == [99, 0]


class TestViews:
    def test_slice_is_sub_batch_view(self):
        b = OpBatch.from_pairs([(OP_INSERT, k) for k in range(10)])
        sub = b[2:5]
        assert isinstance(sub, OpBatch)
        assert len(sub) == 3
        assert sub.keys.tolist() == [2, 3, 4]
        assert np.shares_memory(sub.keys, b.keys)

    def test_counts_and_update_fraction(self):
        b = OpBatch.from_pairs([(OP_CONTAINS, 1), (OP_CONTAINS, 2),
                                (OP_INSERT, 3), (OP_DELETE, 4)])
        assert b.counts() == {"contains": 2, "insert": 1, "delete": 1}
        assert b.update_fraction == pytest.approx(0.5)
        assert OpBatch(ops=[], keys=[]).update_fraction == 0.0
