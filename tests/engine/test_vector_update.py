"""Tests for the vectorized update critical sections
(:func:`repro.core.vector.update_wave`) and their conflict-group
partitioner.

The contract under test (DESIGN.md §12): a wave's updates are batched
only when the quiescent snapshot proves no schedule could lock-conflict,
split, merge, or touch an upper level — and then the batched execution
is *byte-identical* to sequential replay.  Every adversarial wave (all
ops on one chunk, split-triggering inserts, delete of a raised key,
merge-triggering deletes) must take the generator fallback and still
produce sequential results.
"""

import numpy as np
import pytest

from repro.core import vector
from repro.engine import OpBatch, make_backend, make_structure
from repro.engine.batch import OP_DELETE, OP_INSERT
from repro.workloads import MIX_10_10_80, generate
from repro.workloads.generator import Workload


def _twin(workload, **kwargs):
    """Two structures built identically (the simulator is pure)."""
    return (make_structure("gfsl", workload, seed=0, **kwargs),
            make_structure("gfsl", workload, seed=0, **kwargs))


def _insert_only_workload(keys, key_range, prefill=()):
    keys = np.asarray(keys, dtype=np.int64)
    return Workload(key_range=key_range, mixture=MIX_10_10_80,
                    prefill=np.asarray(prefill, dtype=np.int64),
                    ops=np.full(keys.size, OP_INSERT, dtype=np.int64),
                    keys=keys,
                    values=np.arange(1, keys.size + 1, dtype=np.int64))


class TestFastPath:
    def test_spread_wave_batches_and_matches_sequential_bytes(self):
        """A wave of distinct-key updates spread across chunks batches
        fully — and because eligibility proves no split/merge/upper-level
        touch, the batched memory image is byte-identical to sequential
        replay of the same ops."""
        w = generate(MIX_10_10_80, key_range=4_000, n_ops=10, seed=3)
        st_v, st_s = _twin(w)
        present = sorted(st_v.keys())
        absent = [k for k in range(1, 4_001) if k not in set(present)]
        # Few ops per chunk: sparse inserts + sparse deletes, all spread.
        ins = absent[::97][:12]
        dels = present[::131][:8]
        keys = np.array(ins + dels, dtype=np.int64)
        ops = np.array([OP_INSERT] * len(ins) + [OP_DELETE] * len(dels),
                       dtype=np.int64)
        vals = np.arange(1, keys.size + 1, dtype=np.int64)

        res, handled, found, paths = st_v.vector_update_wave(
            ops, keys, vals, tracer=None)
        diag = vector.last_call_diag
        assert bool(handled.all()), "spread wave must batch fully"
        assert diag["batched"] == keys.size
        assert diag["fallback_conflict"] == 0
        assert bool(res.all())          # all inserts new, all deletes hit

        for op, k, v in zip(ops.tolist(), keys.tolist(), vals.tolist()):
            if op == OP_INSERT:
                assert st_s.ctx.run(st_s.insert_gen(int(k), int(v)))
            else:
                assert st_s.ctx.run(st_s.delete_gen(int(k)))
        assert np.array_equal(st_v.ctx.mem.raw(), st_s.ctx.mem.raw()), \
            "batched critical sections diverge from sequential bytes"
        assert st_v.op_stats.inserts == st_s.op_stats.inserts
        assert st_v.op_stats.deletes == st_s.op_stats.deletes

    def test_trivial_outcomes_resolved_without_batching(self):
        w = generate(MIX_10_10_80, key_range=1_000, n_ops=10, seed=3)
        st, _ = _twin(w)
        present = sorted(st.keys())
        absent = next(k for k in range(1, 1_001) if k not in set(present))
        keys = np.array([present[0], absent], dtype=np.int64)
        ops = np.array([OP_INSERT, OP_DELETE], dtype=np.int64)
        st.op_stats.reset()
        res, handled, _f, _p = st.vector_update_wave(
            ops, keys, np.ones(2, dtype=np.int64), tracer=None)
        assert bool(handled.all())
        assert not bool(res.any())      # insert-of-present / delete-of-absent
        assert vector.last_call_diag["batched"] == 0
        assert st.op_stats.inserts == 0 and st.op_stats.deletes == 0


class TestAdversarialWaves:
    def test_split_triggering_inserts_fall_back_byte_identical(self):
        """All inserts landing in one chunk with more keys than fit: no
        schedule can avoid the split, so the whole cluster must take the
        generator path — and (insert-only ⇒ zombie-free) end up
        byte-identical to the sequential backend."""
        n = 12   # team 8 → dsize 6: any 7+ inserts on one chunk overflow
        w = _insert_only_workload(range(100, 100 + n), key_range=4_096)
        st_v, st_s = _twin(w, team_size=8)

        res_v = make_backend("vectorized").execute(
            st_v, OpBatch.from_workload(w))
        diag = vector.last_call_diag
        assert diag["batched"] == 0
        assert diag["fallback_conflict"] > 0
        res_s = make_backend("sequential").execute(
            st_s, OpBatch.from_workload(w))
        assert res_v.results == res_s.results
        assert st_v.op_stats.splits == st_s.op_stats.splits > 0
        assert np.array_equal(st_v.ctx.mem.raw(), st_s.ctx.mem.raw()), \
            "fallback replay diverges from sequential bytes"

    def test_delete_of_raised_key_falls_back(self):
        """With p_chunk=1 every split raises its key to the next level;
        deleting that key requires the top-down level sweep, so the
        vectorized wave must hand it to the generator."""
        w = _insert_only_workload([], key_range=4_096)
        st, _ = _twin(w, team_size=8)
        raised = None
        for k in range(10, 200):
            before = st.op_stats.splits
            assert st.ctx.run(st.insert_gen(k, 1))
            if st.op_stats.splits > before:
                raised = k              # split inserts raise k itself
                break
        assert raised is not None, "no split in 190 inserts?"

        keys = np.array([raised], dtype=np.int64)
        res, handled, found, paths = st.vector_update_wave(
            np.array([OP_DELETE], dtype=np.int64), keys,
            np.zeros(1, dtype=np.int64), tracer=None)
        assert not bool(handled[0]), "upper-level delete must fall back"
        assert vector.last_call_diag["fallback_conflict"] == 1
        assert bool(found[0])
        hint = (bool(found[0]), paths[0].tolist())
        assert st.ctx.run(st.delete_gen(int(raised), hint=hint))
        assert not st.contains(int(raised))

    def test_merge_triggering_deletes_fall_back(self):
        """Deleting enough keys of one chunk to cross the merge
        threshold: some schedule merges, so the cluster is ineligible."""
        w = generate(MIX_10_10_80, key_range=2_000, n_ops=10, seed=9)
        st_v, st_s = _twin(w, team_size=8)
        present = np.array(sorted(st_v.keys()), dtype=np.int64)
        _f, paths = st_v.vector_search(present, tracer=None)
        bottoms, counts = np.unique(paths[:, 0], return_counts=True)
        target = bottoms[np.argmax(counts)]
        doomed = present[paths[:, 0] == target][:5]   # dsize 6: 5 deletes
        assert doomed.size >= 4                       # always cross dsize/3

        ops = np.full(doomed.size, OP_DELETE, dtype=np.int64)
        res, handled, found, paths = st_v.vector_update_wave(
            ops, doomed, np.zeros(doomed.size, dtype=np.int64),
            tracer=None)
        unhandled = ~handled
        assert bool(unhandled.any()), "merge-bound cluster must fall back"
        for i in np.nonzero(unhandled)[0].tolist():
            hint = (bool(found[i]), paths[i].tolist())
            st_v.ctx.run(st_v.delete_gen(int(doomed[i]), hint=hint))
        for k in doomed.tolist():
            assert st_s.ctx.run(st_s.delete_gen(int(k)))
        assert st_v.keys() == st_s.keys()
        assert st_v.items() == st_s.items()


class TestDiagnostics:
    def test_per_call_diag_is_fresh_data(self):
        """Each kernel call returns its own diagnostics object; the
        module alias is a snapshot of the latest call, so concurrent or
        sharded kernel calls can never clobber a caller's numbers."""
        w = generate(MIX_10_10_80, key_range=1_000, n_ops=10, seed=5)
        st, _ = _twin(w)
        vector.vector_contains(st, np.arange(1, 33, dtype=np.int64))
        d1 = vector.last_call_diag
        vector.vector_contains(st, np.arange(1, 9, dtype=np.int64))
        d2 = vector.last_call_diag
        assert d1 is not d2
        assert d1["ops"] == 32 and d2["ops"] == 64 - 56
        d2["ops"] = -1                   # caller mutation stays local
        vector.vector_contains(st, np.arange(1, 2, dtype=np.int64))
        assert vector.last_call_diag["ops"] == 1
        assert d1["ops"] == 32

    def test_update_wave_diag_keys(self):
        w = generate(MIX_10_10_80, key_range=1_000, n_ops=10, seed=5)
        st, _ = _twin(w)
        absent = next(k for k in range(1, 1_001)
                      if k not in set(st.keys()))
        st.vector_update_wave(np.array([OP_INSERT], dtype=np.int64),
                              np.array([absent], dtype=np.int64),
                              np.array([1], dtype=np.int64))
        diag = vector.last_call_diag
        for key in ("ops", "fallback_backtrack", "fallback_restart",
                    "fallback_stuck", "batched", "fallback_conflict"):
            assert key in diag
        assert diag["ops"] == 1 and diag["batched"] == 1


@pytest.mark.parametrize("shards", [1, 4])
def test_sharded_update_wave_matches_sequential(shards):
    """The fused cross-shard dispatch preserves the differential
    contract at every shard count."""
    w = generate(MIX_10_10_80, key_range=2_048, n_ops=400, seed=13)
    kw = {} if shards == 1 else {"shards": shards}
    st_s = make_structure("gfsl", w, seed=0, **kw)
    res_s = make_backend("sequential").execute(st_s, OpBatch.from_workload(w))
    st_v = make_structure("gfsl", w, seed=0, **kw)
    res_v = make_backend("vectorized").execute(st_v, OpBatch.from_workload(w))
    assert res_v.results == res_s.results
    assert st_v.keys() == st_s.keys()
    assert st_v.items() == st_s.items()
