"""Differential tests: every backend × every structure must agree.

The engine's contract (DESIGN.md "Execution engine"): all backends
replay the same generators against the same memory model, so with a
unique-key op stream every backend produces identical per-op results,
identical final key sets, and identical invariant operation counters
(``inserts``/``deletes``/``contains_calls``).  Restart/zombie/split
counters are scheduling-dependent and deliberately excluded.

The vectorized backend additionally matches sequential replay *even
with duplicate keys*: its wave planner defers same-key ops FIFO, so no
reordering is observable.
"""

import numpy as np
import pytest

from repro.engine import (BACKEND_NAMES, OpBatch, available_structures,
                          make_backend, make_structure)
from repro.workloads import MIX_10_10_80, generate
from repro.workloads.generator import Workload

INVARIANT_STATS = ("inserts", "deletes", "contains_calls")


def _unique_key_workload(seed=5, key_range=4_000, n_ops=600) -> Workload:
    """A mixed workload whose op keys are all distinct (so op reordering
    between ops is unobservable — required for the interleaved
    backend)."""
    rng = np.random.default_rng(seed)
    keys = rng.permutation(
        np.arange(1, key_range + 1, dtype=np.int64))[:n_ops]
    ops = rng.choice(np.array([0, 1, 2], dtype=np.int64), size=n_ops,
                     p=[0.6, 0.2, 0.2])
    prefill = rng.choice(np.arange(1, key_range + 1, dtype=np.int64),
                         size=key_range // 2, replace=False)
    values = rng.integers(1, 2**31, size=n_ops, dtype=np.int64)
    return Workload(key_range=key_range, mixture=MIX_10_10_80,
                    prefill=prefill, ops=ops, keys=keys, values=values)


def _execute(kind: str, workload: Workload, backend_name: str, **kwargs):
    st = make_structure(kind, workload, seed=0, **kwargs)
    st.op_stats.reset()
    res = make_backend(backend_name).execute(
        st, OpBatch.from_workload(workload))
    stats = {f: getattr(st.op_stats, f) for f in INVARIANT_STATS}
    return res.results, sorted(st.keys()), stats


@pytest.mark.parametrize("kind", available_structures())
def test_all_backends_agree_on_unique_keys(kind):
    w = _unique_key_workload()
    ref_results, ref_keys, ref_stats = _execute(kind, w, BACKEND_NAMES[0])
    assert ref_stats["inserts"] > 0 and ref_stats["deletes"] > 0
    for name in BACKEND_NAMES[1:]:
        results, keys, stats = _execute(kind, w, name)
        assert results == ref_results, f"{name} per-op results diverge"
        assert keys == ref_keys, f"{name} final key set diverges"
        assert stats == ref_stats, f"{name} invariant counters diverge"


@pytest.mark.parametrize("kind", available_structures())
def test_vectorized_matches_sequential_with_duplicates(kind):
    """Duplicate-heavy stream: the wave planner's per-key FIFO deferral
    must keep vectorized replay op-for-op identical to sequential."""
    w = generate(MIX_10_10_80, key_range=500, n_ops=800, seed=13)
    assert len(set(w.keys.tolist())) < w.n_ops   # duplicates present
    seq_results, seq_keys, seq_stats = _execute(kind, w, "sequential")
    vec_results, vec_keys, vec_stats = _execute(kind, w, "vectorized")
    assert vec_results == seq_results
    assert vec_keys == seq_keys
    assert vec_stats == seq_stats


@pytest.mark.parametrize("shards", [1, 4])
@pytest.mark.parametrize("kind", available_structures())
def test_vectorized_matches_sequential_across_shards(kind, shards):
    """The fused cross-shard vectorized dispatch (batched critical
    sections included) keeps every shard count op-identical to
    sequential replay."""
    w = generate(MIX_10_10_80, key_range=2_048, n_ops=400, seed=13)
    kwargs = {} if shards == 1 else {"shards": shards}
    seq_results, seq_keys, seq_stats = _execute(kind, w, "sequential",
                                                **kwargs)
    vec_results, vec_keys, vec_stats = _execute(kind, w, "vectorized",
                                                **kwargs)
    assert vec_results == seq_results
    assert vec_keys == seq_keys
    assert vec_stats == seq_stats


def test_results_reflect_structure_state():
    """Spot-check semantics through the engine: insert/delete returns
    track presence, contains reflects the interleaved state."""
    w = _unique_key_workload(seed=8, n_ops=300)
    st = make_structure("gfsl", w, seed=0)
    res = make_backend("sequential").execute(st, OpBatch.from_workload(w))
    present = set(int(k) for k in w.prefill)
    for op, key, ok in zip(w.ops.tolist(), w.keys.tolist(), res.results):
        if op == 0:
            assert ok == (key in present)
        elif op == 1:
            assert ok == (key not in present)
            present.add(key)
        else:
            assert ok == (key in present)
            present.discard(key)
    assert sorted(st.keys()) == sorted(present)
