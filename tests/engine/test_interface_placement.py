"""Placement-explicit builders: instances no longer assume they own the
device.  The registry builders accept a shared context (reserving their
region) or an explicit base, and a prefill/expected override — the
contract the sharding layer builds on."""

import numpy as np
import pytest

from repro.engine import region_words
from repro.engine.interface import _build_gfsl, _build_mc, parse_structure_kind
from repro.gpu.kernel import RESERVE_ALIGN, GPUContext
from repro.workloads import MIX_10_10_80, generate


def _workload(seed=31):
    return generate(MIX_10_10_80, key_range=1_500, n_ops=200, seed=seed)


@pytest.mark.parametrize("kind,build", [("gfsl", _build_gfsl),
                                        ("mc", _build_mc)])
def test_two_instances_coexist_on_one_context(kind, build):
    w = _workload()
    expected = len(w.prefill) + len(w.ops) + 8
    words = region_words(kind, expected)
    aligned = -(-words // RESERVE_ALIGN) * RESERVE_ALIGN
    ctx = GPUContext(aligned + words)
    a = build(w, ctx=ctx, expected=expected, seed=1)
    b = build(w, ctx=ctx, expected=expected, seed=2,
              prefill=np.asarray([], dtype=np.int64))
    assert a.ctx is ctx and b.ctx is ctx
    # Both prefilled states are intact: building b did not clobber a.
    assert a.keys() == sorted(int(k) for k in w.prefill)
    assert b.keys() == []
    # Mutations stay inside each instance's region.
    probe = int(w.key_range) + 5
    a.insert(probe)
    assert a.contains(probe) and not b.contains(probe)
    b.insert(probe)
    a.delete(probe)
    assert b.contains(probe) and not a.contains(probe)


def test_explicit_base_is_honoured():
    w = _workload()
    expected = len(w.prefill) + len(w.ops) + 8
    base = 4 * RESERVE_ALIGN
    ctx = GPUContext(base + region_words("gfsl", expected))
    sl = _build_gfsl(w, ctx=ctx, base=base, expected=expected)
    assert sl.layout.base == base
    assert sl.keys() == sorted(int(k) for k in w.prefill)


def test_default_build_unchanged():
    w = _workload()
    sl = _build_gfsl(w)
    assert sl.layout.base == 0
    assert sl.ctx.mem.num_words == sl.layout.total_words
    mc = _build_mc(w)
    assert mc.pool.base == 0


def test_reserve_alignment_and_exhaustion():
    ctx = GPUContext(100)
    assert ctx.reserve(10) == 0
    assert ctx.reserve(10) == RESERVE_ALIGN  # bumped to the next line
    assert ctx.reserved_words == RESERVE_ALIGN + 10
    with pytest.raises(MemoryError):
        ctx.reserve(1000)
    with pytest.raises(ValueError):
        ctx.reserve(0)


def test_parse_structure_kind():
    assert parse_structure_kind("gfsl") == ("gfsl", 1)
    assert parse_structure_kind("mc@4") == ("mc", 4)
    for bad in ("gfsl@", "gfsl@0", "gfsl@-2", "gfsl@x"):
        with pytest.raises(ValueError):
            parse_structure_kind(bad)
