"""Backend scheduling details: per-wave seeds and wave accounting."""

import numpy as np
import pytest

import repro.chaos.backend as chaos_backend
import repro.engine.backends as backends_mod
from repro.chaos.backend import ChaosBackend
from repro.engine import OpBatch, make_backend, make_structure
from repro.engine.backends import InterleavedBackend
from repro.workloads import MIX_10_10_80, generate


def _workload(n_ops=40, key_range=500, seed=9):
    w = generate(MIX_10_10_80, key_range=key_range, n_ops=n_ops, seed=seed)
    # Unique op keys: backends must then agree on outcomes regardless of
    # interleaving, so seed changes stay invisible to results.
    rng = np.random.default_rng(seed)
    w.keys[:] = rng.permutation(
        np.arange(1, key_range + 1, dtype=np.int64))[:n_ops]
    return w


class _SeedRecorder:
    """Stand-in scheduler factory that records the seed of every wave."""

    def __init__(self, real_cls):
        self.real_cls = real_cls
        self.seeds = []

    def __call__(self, *args, **kwargs):
        self.seeds.append(kwargs.get("seed"))
        return self.real_cls(*args, **kwargs)


@pytest.mark.parametrize("module,make", [
    (backends_mod, lambda seed: InterleavedBackend(concurrency=8,
                                                   seed=seed)),
    (chaos_backend, lambda seed: ChaosBackend(concurrency=8, seed=seed)),
])
def test_each_wave_gets_a_distinct_derived_seed(monkeypatch, module, make):
    """Seeded shuffling must not replay the same RNG stream every wave:
    wave i runs with seed + i (both interleaved flavours, identically —
    the zero-fault differential depends on it)."""
    rec = _SeedRecorder(module.InterleavingScheduler)
    monkeypatch.setattr(module, "InterleavingScheduler", rec)
    w = _workload(n_ops=40)
    st = make_structure("gfsl", w, team_size=8, seed=0)
    make(123).execute(st, OpBatch.from_workload(w))
    assert rec.seeds == [123 + i for i in range(5)]


@pytest.mark.parametrize("module,make", [
    (backends_mod, lambda: InterleavedBackend(concurrency=8)),
    (chaos_backend, lambda: ChaosBackend(concurrency=8)),
])
def test_unseeded_waves_stay_deterministic_round_robin(monkeypatch, module,
                                                       make):
    rec = _SeedRecorder(module.InterleavingScheduler)
    monkeypatch.setattr(module, "InterleavingScheduler", rec)
    w = _workload(n_ops=20)
    st = make_structure("gfsl", w, team_size=8, seed=0)
    make().execute(st, OpBatch.from_workload(w))
    assert rec.seeds == [None, None, None]


def test_seeded_backends_still_agree_on_outcomes():
    """With unique keys, different wave seeds only reorder interleaving
    — per-op results and the final key set cannot change."""
    w = _workload(n_ops=60)
    outcomes = []
    for seed in (None, 1, 99):
        st = make_structure("gfsl", w, team_size=8, seed=0)
        res = InterleavedBackend(concurrency=16, seed=seed).execute(
            st, OpBatch.from_workload(w))
        outcomes.append((res.results, sorted(st.keys())))
    assert outcomes[0] == outcomes[1] == outcomes[2]


class TestWaveCounts:
    def test_interleaved_wave_count(self):
        w = _workload(n_ops=40)
        st = make_structure("gfsl", w, team_size=8, seed=0)
        res = InterleavedBackend(concurrency=16).execute(
            st, OpBatch.from_workload(w))
        assert res.waves == 3            # ceil(40 / 16)

    def test_vectorized_counts_only_nonempty_waves(self):
        """BatchResult.waves is the number of waves that actually ran
        ops — with unit waves and all-duplicate keys, exactly n_ops."""
        n = 5
        batch = OpBatch(ops=np.full(n, 1, dtype=np.int64),
                        keys=np.full(n, 42, dtype=np.int64),
                        values=np.arange(n, dtype=np.int64))
        w = _workload(n_ops=8)
        st = make_structure("gfsl", w, team_size=8, seed=0)
        res = make_backend("vectorized", wave_size=1).execute(st, batch)
        assert res.waves == n
        assert len(res.results) == n

    def test_sequential_waves_equal_ops(self):
        w = _workload(n_ops=7)
        st = make_structure("gfsl", w, team_size=8, seed=0)
        res = make_backend("sequential").execute(
            st, OpBatch.from_workload(w))
        assert res.waves == 7
