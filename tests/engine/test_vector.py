"""Tests for the vectorized multi-key traversal kernels that back the
vectorized engine backend (``repro.core.vector``)."""

import numpy as np
import pytest

from repro.core import vector
from repro.engine import make_structure
from repro.gpu.scheduler import run_to_completion
from repro.workloads import MIX_10_10_80, generate


@pytest.fixture(scope="module")
def built():
    w = generate(MIX_10_10_80, key_range=5_000, n_ops=10, seed=4)
    sl = make_structure("gfsl", w, seed=0)
    return sl, set(int(k) for k in w.prefill)


class TestVectorContains:
    def test_matches_scalar_contains(self, built):
        sl, present = built
        rng = np.random.default_rng(0)
        keys = rng.integers(1, 5_001, size=512, dtype=np.int64)
        found = vector.vector_contains(sl, keys, tracer=None)
        expected = np.array([k in present for k in keys.tolist()])
        assert np.array_equal(found, expected)

    def test_counts_contains_calls(self, built):
        sl, _present = built
        sl.op_stats.reset()
        keys = np.arange(1, 101, dtype=np.int64)
        vector.vector_contains(sl, keys, tracer=None)
        assert sl.op_stats.contains_calls == 100

    def test_diagnostics_updated(self, built):
        sl, _present = built
        vector.vector_contains(sl, np.arange(1, 65, dtype=np.int64),
                               tracer=None)
        diag = vector.last_call_diag
        assert diag["ops"] == 64
        # A quiescent structure never forces the restart fallback.
        assert diag["fallback_restart"] == 0
        assert diag["fallback_stuck"] == 0


class TestVectorSearch:
    def test_hints_match_scalar_search(self, built):
        """``vector_search`` must agree with the scalar ``search_slow``
        on the found flag, and its paths must be usable hints: every
        recorded chunk is a valid starting point for the per-level
        lateral re-walk (checked by running a hinted delete/insert)."""
        from repro.core.traversal import search_slow
        sl, present = built
        rng = np.random.default_rng(1)
        keys = rng.integers(1, 5_001, size=256, dtype=np.int64)
        found, paths = vector.vector_search(sl, keys, tracer=None)
        assert paths.shape == (256, sl.layout.max_level)
        for i, k in enumerate(keys.tolist()):
            sfound, _spath = run_to_completion(search_slow(sl, k),
                                               sl.ctx.mem, None)
            assert bool(found[i]) == sfound == (k in present)

    def test_hinted_update_round_trip(self, built):
        sl, present = built
        absent = next(k for k in range(1, 5_001) if k not in present)
        keys = np.array([absent], dtype=np.int64)
        found, paths = vector.vector_search(sl, keys, tracer=None)
        assert not bool(found[0])
        hint = (bool(found[0]), paths[0].tolist())
        assert sl.ctx.run(sl.insert_gen(absent, 7, hint=hint)) is True
        found2, paths2 = vector.vector_search(sl, keys, tracer=None)
        hint2 = (bool(found2[0]), paths2[0].tolist())
        assert sl.ctx.run(sl.delete_gen(absent, hint=hint2)) is True
        assert not sl.contains(absent)
