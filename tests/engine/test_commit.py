"""Atomic batch commits through the engine backends (DESIGN.md §13).

``commit="batch"`` must publish a whole :class:`OpBatch` at one epoch
bump on every backend: a snapshot pinned while the batch runs sees none
of it (all-or-nothing), a snapshot pinned after sees all of it — and
the scope must nest (backend-level + call-level = one bump).
"""

import numpy as np
import pytest

from repro.core import GFSL
from repro.engine import OpBatch, make_backend
from repro.engine.backends import COMMIT_MODES, commit_scope
from repro.engine.batch import OP_DELETE, OP_INSERT

BACKENDS = ("sequential", "interleaved", "vectorized")


def fresh(seed=1):
    sl = GFSL(capacity_chunks=512, team_size=8, seed=seed)
    for k in range(10, 200, 10):
        sl.insert(k, value=k)
    return sl


def mixed_batch():
    """Inserts of fresh keys plus deletes of prefilled ones — both op
    kinds must flip atomically."""
    ins = [(k, k * 7) for k in range(201, 231)]
    dels = [10, 20, 30]
    ops = np.array([OP_INSERT] * len(ins) + [OP_DELETE] * len(dels))
    keys = np.array([k for k, _ in ins] + dels)
    vals = np.array([v for _, v in ins] + [0] * len(dels))
    return OpBatch(ops=ops, keys=keys, values=vals)


class TestCommitScope:
    def test_unknown_mode_rejected(self):
        sl = fresh()
        with pytest.raises(ValueError, match="commit mode"):
            commit_scope(sl, "transactional")
        assert COMMIT_MODES == ("per-op", "batch")

    def test_per_op_scope_never_touches_epochs(self):
        sl = fresh()
        with commit_scope(sl, "per-op"):
            sl.insert(999)
        assert sl.ctx._epochs is None


class TestBatchAtomicity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_mid_commit_snapshot_sees_nothing(self, backend):
        sl = fresh()
        pre = sl.items()
        batch = mixed_batch()
        mgr = sl.ctx.epochs
        with mgr.commit():
            snap = sl.begin_snapshot()      # pinned inside the commit
            sl.execute_batch(batch, backend=backend, commit="batch")
            assert snap.items() == pre      # none of the batch visible
        try:
            # Still the pre-batch cut even after the commit published.
            assert snap.items() == pre
        finally:
            snap.release()
        post = dict(sl.items())
        assert all(post.get(k) == k * 7 for k in range(201, 231))
        assert all(k not in post for k in (10, 20, 30))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_post_commit_snapshot_sees_everything(self, backend):
        sl = fresh()
        sl.execute_batch(mixed_batch(), backend=backend, commit="batch")
        with sl.begin_snapshot() as snap:
            got = dict(snap.items())
        assert all(got.get(k) == k * 7 for k in range(201, 231))
        assert all(k not in got for k in (10, 20, 30))

    def test_backend_commit_param_nests_to_one_bump(self):
        """A batch-committing backend inside ``execute_batch(...,
        commit="batch")`` bumps the epoch exactly once."""
        sl = fresh()
        mgr = sl.ctx.epochs
        before = mgr.epoch
        be = make_backend("vectorized", commit="batch")
        sl.execute_batch(mixed_batch(), backend=be, commit="batch")
        assert mgr.epoch == before + 1

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_batch_result_matches_per_op_replay(self, backend):
        """Commit mode changes publication granularity, never results."""
        batch = mixed_batch()
        a = fresh(seed=5).execute_batch(batch, backend=backend,
                                        commit="per-op")
        b = fresh(seed=5).execute_batch(batch, backend=backend,
                                        commit="batch")
        assert list(a.results) == list(b.results)

    def test_commit_reclaims_when_unpinned(self):
        sl = fresh()
        mgr = sl.ctx.epochs
        sl.execute_batch(mixed_batch(), backend="vectorized",
                         commit="batch")
        assert mgr.active_pins == 0
        assert not mgr._versions and not mgr._last_mod
        assert sl.ctx.mem.write_barrier is None
