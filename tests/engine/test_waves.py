"""Property tests for the vectorized backend's wave planner."""

import numpy as np

from repro.engine import plan_waves


def _flatten(waves):
    return [i for w in waves for i in w]


class TestPlanWaves:
    def test_no_repeated_key_within_a_wave(self):
        rng = np.random.default_rng(0)
        keys = rng.integers(0, 50, size=400)
        for wave in plan_waves(keys, wave_size=64):
            wave_keys = keys[wave]
            assert len(set(wave_keys.tolist())) == len(wave_keys)

    def test_every_index_scheduled_exactly_once(self):
        rng = np.random.default_rng(1)
        keys = rng.integers(0, 30, size=300)
        waves = plan_waves(keys, wave_size=32)
        assert sorted(_flatten(waves)) == list(range(300))

    def test_per_key_fifo_order(self):
        """Ops on the same key must execute in submission order even
        across deferrals — the property that makes wave replay
        outcome-equivalent to sequential replay."""
        rng = np.random.default_rng(2)
        keys = rng.integers(0, 10, size=200)      # heavy duplication
        waves = plan_waves(keys, wave_size=16)
        order = _flatten(waves)
        position = {idx: pos for pos, idx in enumerate(order)}
        for k in range(10):
            idxs = np.flatnonzero(keys == k)
            positions = [position[int(i)] for i in idxs]
            assert positions == sorted(positions)

    def test_wave_size_respected(self):
        keys = np.arange(1000)
        waves = plan_waves(keys, wave_size=128)
        assert all(len(w) <= 128 for w in waves)
        assert len(waves) == 8   # all keys distinct: perfect packing

    def test_all_same_key_degenerates_to_sequential(self):
        waves = plan_waves(np.zeros(5, dtype=np.int64), wave_size=4)
        assert [len(w) for w in waves] == [1, 1, 1, 1, 1]
        assert _flatten(waves) == [0, 1, 2, 3, 4]

    def test_empty_and_invalid(self):
        assert plan_waves(np.array([], dtype=np.int64)) == []
        import pytest
        with pytest.raises(ValueError):
            plan_waves(np.array([1]), wave_size=0)

    def test_wave_size_one_all_duplicates(self):
        """The degenerate corner: every op on one key with unit waves.
        Still strictly sequential, FIFO, and no wave ever empty."""
        waves = plan_waves(np.full(6, 7, dtype=np.int64), wave_size=1)
        assert [len(w) for w in waves] == [1] * 6
        assert _flatten(waves) == list(range(6))

    def test_planner_never_emits_an_empty_wave(self):
        rng = np.random.default_rng(3)
        for wave_size in (1, 2, 7):
            keys = rng.integers(0, 5, size=60)
            assert all(plan_waves(keys, wave_size=wave_size))
