"""Tests for the EXPERIMENTS.md generator."""



from repro.experiments import report_md


def test_build_with_results(tmp_path):
    (tmp_path / "table_5_1.txt").write_text("Table 5.1 rows here")
    text = report_md.build(tmp_path)
    assert "# EXPERIMENTS" in text
    assert "Table 5.1 rows here" in text
    assert "Known deviations" in text


def test_build_missing_results_flagged(tmp_path):
    text = report_md.build(tmp_path)
    assert "no measured rows found" in text


def test_every_section_has_commentary():
    names = [name for name, _t, commentary in report_md.SECTIONS]
    assert len(names) == len(set(names))
    for _name, title, commentary in report_md.SECTIONS:
        assert len(commentary) > 40, title


def test_main_writes_file(tmp_path, capsys):
    results = tmp_path / "results"
    results.mkdir()
    (results / "fig_5_2.txt").write_text("ratio rows")
    out = tmp_path / "EXP.md"
    assert report_md.main([str(results), str(out)]) == 0
    assert "ratio rows" in out.read_text()


def test_sections_cover_all_tables_and_figures():
    names = {name for name, _t, _c in report_md.SECTIONS}
    for required in ("table_5_1", "table_5_2", "fig_5_1", "fig_5_2",
                     "fig_5_3", "fig_5_4"):
        assert required in names
