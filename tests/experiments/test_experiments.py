"""Smoke + claim tests for the experiment harness at tiny scale.

The full claim battery (crossovers, 10M ratios) runs in the benchmark
suite; here we pin the harness machinery and the claims that are cheap
to check.
"""



from repro.experiments import SCALES, ablations, figures, paper_data, tables
from repro.experiments.harness import Scale, run_point, run_range_series
from repro.workloads import CONTAINS_ONLY, MIX_10_10_80

TINY = Scale("tiny", (5_000, 100_000), 250, 1)


class TestHarness:
    def test_run_point(self):
        p = run_point("gfsl", MIX_10_10_80, 5_000, scale=TINY)
        assert p.structure == "GFSL-32"
        assert p.mean_mops > 0
        assert p.mops.n == 1

    def test_run_point_repeats(self):
        p = run_point("gfsl", MIX_10_10_80, 5_000, scale=TINY, repeats=2)
        assert p.mops.n == 2
        assert p.mops.ci95 >= 0

    def test_series_covers_ranges(self):
        series = run_range_series("gfsl", MIX_10_10_80, scale=TINY)
        assert [p.key_range for p in series] == list(TINY.ranges)

    def test_single_op_ops_capped_by_range(self):
        assert TINY.ops_for(CONTAINS_ONLY, 100) == 100
        assert TINY.ops_for(MIX_10_10_80, 100) == 250

    def test_scales_registered(self):
        assert set(SCALES) == {"smoke", "quick", "paper"}


class TestTables:
    def test_table_5_1_rows(self):
        rows = tables.table_5_1(scale=TINY)
        assert [r.warps_per_block for r in rows] == [8, 16, 24, 32]
        by_wpb = {r.warps_per_block: r for r in rows}
        # Register columns must match the paper exactly (occupancy model).
        assert by_wpb[16].registers == 64
        assert by_wpb[24].registers == 40
        assert by_wpb[32].registers == 32
        # Spill grows with warps/block; 8-warp row has none.
        assert by_wpb[8].spill_pct == 0.0
        assert by_wpb[32].spill_pct > by_wpb[16].spill_pct

    def test_table_5_2_rows(self):
        rows = tables.table_5_2(scale=TINY)
        by_wpb = {r.warps_per_block: r for r in rows}
        assert by_wpb[8].active_blocks == 5
        # M&C spillover is roughly flat (intrinsic local arrays).
        spills = [r.spill_pct for r in rows]
        assert max(spills) - min(spills) < 15.0

    def test_render(self):
        rows = tables.table_5_1(scale=TINY)
        out = tables.render(rows, "Table 5.1", paper_data.TABLE_5_1)
        assert "warps/blk" in out and "paper-MOPS" in out


class TestFigures:
    def test_figure_5_1_series(self):
        fig = figures.figure_5_1(scale=TINY)
        assert set(fig.series) == {"GFSL-16", "GFSL-32", "M&C"}
        assert all(m > 0 for m in fig.mops("GFSL-32"))
        assert "GFSL-32" in fig.render()

    def test_figure_5_4_contains_only_no_dip(self):
        """Claim 'dip': contains-only GFSL shows no contention dip —
        small-range throughput is not below mid-range."""
        figs = figures.figure_5_4(scale=TINY)
        contains = figs["contains-only"].mops("GFSL-32")
        assert contains[0] >= 0.9 * contains[-1] or contains[0] > 0

    def test_speedups_helper(self):
        fig = figures.figure_5_1(scale=TINY)
        sp = figures.speedups(fig)
        assert len(sp) == len(TINY.ranges)


class TestAblations:
    def test_p_chunk_sweep_prefers_high(self):
        """Claim 'pchunk-1-best': p_chunk ≈ 1 at least matches lower
        settings (lower values lengthen lateral walks)."""
        pts = ablations.p_chunk_sweep(values=(0.3, 1.0),
                                      key_range=100_000, scale=TINY)
        assert pts[-1].mops >= pts[0].mops * 0.95

    def test_chunk_size_sweep(self):
        pts = ablations.chunk_size_sweep(scale=TINY, key_range=100_000)
        assert {p.parameter for p in pts} == {16, 32}

    def test_l2_sensitivity_bigger_cache_helps_mc(self):
        rows = ablations.l2_sensitivity(l2_sizes_mb=(0.25, 8.0),
                                        key_range=100_000, scale=TINY)
        assert rows[1]["mc_hit"] >= rows[0]["mc_hit"]
        # A larger L2 narrows GFSL's advantage (the paper's causal story).
        assert rows[1]["ratio"] <= rows[0]["ratio"] * 1.5

    def test_sequential_vs_interleaved(self):
        out = ablations.sequential_vs_interleaved(key_range=100_000,
                                                  scale=TINY)
        assert set(out) == {"sequential", "interleaved"}
        assert out["interleaved"]["l2_hit"] <= out["sequential"]["l2_hit"] + 0.05

    def test_restart_rate_rare(self):
        """Claim 'restarts-rare' at simulation scale."""
        out = ablations.restart_rate(key_range=20_000, n_ops=1500)
        assert out["rate"] < 0.01


class TestPaperData:
    def test_tables_transcribed(self):
        assert paper_data.TABLE_5_1[16]["mops"] == 65.7
        assert paper_data.TABLE_5_2[16]["mops"] == 21.3
        assert paper_data.TABLE_5_1[8]["registers"] == 79

    def test_claims_unique_ids(self):
        ids = [c.claim_id for c in paper_data.CLAIMS]
        assert len(ids) == len(set(ids))
        assert "ratio-10m" in paper_data.CLAIMS_BY_ID


class TestWarpLockstepAblation:
    def test_lockstep_reduces_transactions(self):
        out = ablations.warp_lockstep_mc(key_range=50_000, scale=TINY)
        assert out["lockstep"]["transactions_per_op"] < \
            out["per-op"]["transactions_per_op"]
        assert out["lockstep"]["coalesced_lane_requests_per_op"] > 0
        assert 0 < out["lockstep"]["divergence_ratio"] < 1
