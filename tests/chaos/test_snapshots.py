"""Judging snapshot observations in chaos campaigns (DESIGN.md §13).

A :class:`SnapshotObservation` is consistent iff some single instant
inside its pin window admits a legal linearization in which every
relevant key's presence matches the observed frozen cut.  The unit
cases pin the checker's semantics on hand-built histories (including a
torn cut it *must* reject); the campaign tests then run the full
fault-injected torture workloads with frozen readers racing writers.
"""

import pytest

from repro.chaos import SnapshotObservation, check_history
from repro.chaos.backend import ChaosBackend
from repro.chaos.campaign import CampaignConfig, run_campaign
from repro.chaos.linearize import HistoryEvent


def judge(events, initial, final, obs):
    return check_history(events, initial, final, snapshots=list(obs))


class TestSnapshotChecker:
    def test_insert_overlap_admits_both_states(self):
        ev = [HistoryEvent("insert", 5, True, 10, 20)]
        for keys in (frozenset(), frozenset({5})):
            rep = judge(ev, [], [5], [SnapshotObservation(keys, 12, 18)])
            assert rep.ok and rep.snapshots_checked == 1, keys

    def test_window_before_insert_must_not_see(self):
        ev = [HistoryEvent("insert", 5, True, 10, 20)]
        ok = judge(ev, [], [5], [SnapshotObservation(frozenset(), 0, 4)])
        assert ok.ok
        bad = judge(ev, [], [5], [SnapshotObservation(frozenset({5}), 0, 4)])
        assert not bad.ok and len(bad.snapshot_violations) == 1
        assert bad.snapshot_violations[0].snapshot.keys == frozenset({5})

    def test_window_after_insert_must_see(self):
        ev = [HistoryEvent("insert", 5, True, 10, 20)]
        assert judge(ev, [], [5],
                     [SnapshotObservation(frozenset({5}), 30, 40)]).ok
        assert not judge(ev, [], [5],
                         [SnapshotObservation(frozenset(), 30, 40)]).ok

    def test_torn_cut_across_sequenced_keys_rejected(self):
        """Key 1 inserted strictly before key 2: a cut containing 2 but
        not 1 corresponds to no instant."""
        ev = [HistoryEvent("insert", 1, True, 0, 4),
              HistoryEvent("insert", 2, True, 10, 14)]
        rep = judge(ev, [], [1, 2],
                    [SnapshotObservation(frozenset({2}), 0, 20)])
        assert not rep.ok
        assert "instant" in rep.snapshot_violations[0].detail

    def test_all_prefixes_of_sequenced_inserts_accepted(self):
        ev = [HistoryEvent("insert", 1, True, 0, 4),
              HistoryEvent("insert", 2, True, 10, 14)]
        for keys in (frozenset(), frozenset({1}), frozenset({1, 2})):
            rep = judge(ev, [], [1, 2],
                        [SnapshotObservation(keys, 0, 20)])
            assert rep.ok, keys

    def test_untouched_key_checked_statically(self):
        ev = [HistoryEvent("insert", 9, True, 0, 4)]
        rep = judge(ev, [3], [3, 9],
                    [SnapshotObservation(frozenset({9}), 10, 12)])
        assert not rep.ok                      # 3 was live the whole time
        assert "never operated on" in rep.snapshot_violations[0].detail
        assert judge(ev, [3], [3, 9],
                     [SnapshotObservation(frozenset({3, 9}), 10, 12)]).ok

    def test_lo_hi_scopes_the_judgement(self):
        """Keys outside [lo, hi] are not part of the observation."""
        ev = [HistoryEvent("insert", 100, True, 0, 4)]
        rep = judge(ev, [3], [3, 100],
                    [SnapshotObservation(frozenset({3}), 10, 12,
                                         lo=1, hi=50)])
        assert rep.ok

    def test_overlapping_insert_and_delete_admit_either(self):
        ev = [HistoryEvent("insert", 7, True, 0, 10),
              HistoryEvent("delete", 7, True, 5, 15)]
        for keys in (frozenset(), frozenset({7})):
            assert judge(ev, [], [], [SnapshotObservation(keys, 6, 9)]).ok


class TestChaosBackendReaders:
    def test_snapshot_readers_require_per_op_commit(self):
        with pytest.raises(ValueError, match="per-op"):
            ChaosBackend(seed=1, snapshot_readers=2, commit="batch")

    def test_small_campaign_records_observations(self):
        rep = run_campaign(CampaignConfig(n_ops=400, key_range=60,
                                          seed=11, snapshots=2))
        assert rep.ok, rep.summary()
        assert rep.lin.snapshots_checked > 0
        assert not rep.lin.snapshot_violations


class TestTortureCampaigns:
    """The acceptance gate: ≥10k-op fault-injected campaigns whose
    every frozen observation the checker proves is a consistent cut —
    on a single instance and across a 4-shard partitioned map."""

    def test_10k_ops_gfsl_snapshots_consistent(self):
        rep = run_campaign(CampaignConfig(n_ops=10_000, key_range=120,
                                          seed=5, snapshots=2))
        assert rep.ok, rep.summary()
        assert rep.lin.snapshots_checked >= 100
        assert not rep.lin.snapshot_violations

    def test_10k_ops_sharded_cut_consistent(self):
        rep = run_campaign(CampaignConfig(n_ops=10_000, key_range=120,
                                          seed=6, snapshots=1,
                                          structure="gfsl@4"))
        assert rep.ok, rep.summary()
        assert rep.lin.snapshots_checked >= 100
        assert not rep.lin.snapshot_violations
