"""Unit tests for the seeded fault injector (repro.chaos.faults).

The two properties everything else leans on: a zero-rate injector is
*inert* (no RNG draws, no events — the differential guarantee), and a
seeded injector is *deterministic* (campaign reproducibility).
"""

from __future__ import annotations

import copy

import pytest

from repro.chaos.faults import (FAULT_KINDS, PLANTED_BUGS, ChaosConfig,
                                FaultInjector)
from repro.gpu import events as ev


class TestChaosConfig:
    def test_default_is_zero(self):
        cfg = ChaosConfig()
        assert cfg.is_zero()
        assert cfg.active_kinds() == ()

    def test_adversarial_activates_every_kind(self):
        cfg = ChaosConfig.adversarial()
        assert not cfg.is_zero()
        assert cfg.active_kinds() == FAULT_KINDS
        # Intensity scales rates but never past the livelock guard.
        hot = ChaosConfig.adversarial(intensity=100.0)
        assert all(getattr(hot, k) <= 0.95 for k in FAULT_KINDS)

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            ChaosConfig(stall_split=0.96)
        with pytest.raises(ValueError):
            ChaosConfig(fail_lock_cas=-0.1)
        with pytest.raises(ValueError):
            ChaosConfig(stall_events=0)

    def test_planted_bug_validation(self):
        with pytest.raises(ValueError):
            ChaosConfig(bug="no-such-bug")
        cfg = ChaosConfig(bug=PLANTED_BUGS[0])
        assert not cfg.is_zero()          # a planted bug is not "zero"

    def test_without_disables_one_kind(self):
        cfg = ChaosConfig.adversarial().without("stall_split")
        assert "stall_split" not in cfg.active_kinds()
        assert len(cfg.active_kinds()) == len(FAULT_KINDS) - 1
        with pytest.raises(ValueError):
            cfg.without("not-a-kind")

    def test_as_dict_round_trip(self):
        cfg = ChaosConfig.adversarial(bug=PLANTED_BUGS[0])
        assert ChaosConfig(**cfg.as_dict()) == cfg


class TestFaultInjector:
    def test_zero_rate_injector_is_inert(self):
        """No decision at rate 0 may touch the RNG: that is what makes a
        zero-fault chaos run event-for-event identical to interleaved."""
        inj = FaultInjector(seed=7)
        state_before = copy.deepcopy(inj.rng.bit_generator.state)
        for _ in range(50):
            for kind in FAULT_KINDS:
                assert not inj._fire(kind)
            assert list(inj.stall("stall_split")) == []
            assert not inj.spurious_cas_fail()
            assert not inj.skip_turn()
        assert inj.rng.bit_generator.state == state_before
        assert inj.total_injected == 0
        assert inj.kinds_injected() == ()

    def test_seeded_decisions_are_deterministic(self):
        cfg = ChaosConfig.adversarial()
        a = FaultInjector(cfg, seed=42)
        b = FaultInjector(cfg, seed=42)
        seq_a = [a._fire(k) for _ in range(200) for k in FAULT_KINDS]
        seq_b = [b._fire(k) for _ in range(200) for k in FAULT_KINDS]
        assert seq_a == seq_b
        assert a.counts == b.counts
        c = FaultInjector(cfg, seed=43)
        seq_c = [c._fire(k) for _ in range(200) for k in FAULT_KINDS]
        assert seq_c != seq_a

    def test_stall_yields_compute_events(self):
        cfg = ChaosConfig(stall_merge=0.9, stall_events=5)
        inj = FaultInjector(cfg, seed=1)
        fired = []
        for _ in range(50):
            evs = list(inj.stall("stall_merge"))
            if evs:
                fired = evs
                break
        assert len(fired) == 5
        assert all(isinstance(e, ev.Compute) for e in fired)
        assert inj.counts["stall_merge"] >= 1
        assert "stall_merge" in inj.kinds_injected()

    def test_lock_ownership_notes(self):
        inj = FaultInjector(seed=0)
        inj.current_task = 3
        inj.note_lock(17)
        assert inj.owner_of(17) == 3
        assert inj.lock_owners == {17: 3}
        inj.note_unlock(17)
        assert inj.owner_of(17) is None
        inj.note_unlock(17)               # double-unlock is harmless

    def test_bug_active(self):
        inj = FaultInjector(ChaosConfig(bug="skip-zombie-recheck"))
        assert inj.bug_active("skip-zombie-recheck")
        assert not inj.bug_active("other")
        assert not FaultInjector().bug_active("skip-zombie-recheck")
