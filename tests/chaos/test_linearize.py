"""Unit tests for the linearizability checker (repro.chaos.linearize).

The checker is exercised three ways: hand-built histories with known
verdicts (including ones only the real-time order or the final state
can reject), histories past the size where a naive exact search would
explode (overlap-group pruning keeps them exact), and forced-overflow
histories that must fall back to the net-effect condition *visibly*
(``fallback_keys``).
"""

from __future__ import annotations

import pytest

from repro.chaos import linearize
from repro.chaos.linearize import (HistoryEvent, HistoryRecorder,
                                   _net_effect_ok, _overlap_groups,
                                   check_history, check_key_history)


def E(op: str, result: bool, start: int, end: int,
      key: int = 1) -> HistoryEvent:
    return HistoryEvent(op, key, result, start, end)


class TestCheckerVerdicts:
    def test_accepts_sequential_history(self):
        evs = [E("insert", True, 0, 1), E("delete", True, 2, 3)]
        assert check_key_history(evs, initial=False, final=False)

    def test_rejects_impossible_result(self):
        # Two successful inserts with no delete between them.
        evs = [E("insert", True, 0, 1), E("insert", True, 2, 3)]
        assert not check_key_history(evs, initial=False, final=True)

    def test_overlapping_ops_allow_reorder(self):
        # A contains overlapping an insert may see either state.
        evs = [E("insert", True, 0, 10), E("contains", False, 1, 2)]
        assert check_key_history(evs, False, True)
        evs2 = [E("insert", True, 0, 10), E("contains", True, 5, 9)]
        assert check_key_history(evs2, False, True)

    def test_real_time_order_enforced(self):
        # A contains strictly after a successful insert must see it.
        evs = [E("insert", True, 0, 1), E("contains", False, 5, 6)]
        assert not check_key_history(evs, False, True)

    def test_final_state_enforced(self):
        evs = [E("insert", True, 0, 1)]
        assert not check_key_history(evs, False, False)

    def test_empty_history_checks_state_only(self):
        assert check_key_history([], True, True)
        assert not check_key_history([], True, False)

    def test_unknown_operation_rejected(self):
        with pytest.raises(ValueError):
            check_key_history([E("upsert", True, 0, 1)], False, True)


class TestOverlapGroups:
    def test_quiescent_point_cuts(self):
        evs = [E("insert", True, 0, 5), E("delete", True, 10, 15),
               E("contains", False, 12, 14)]
        assert [len(g) for g in _overlap_groups(evs)] == [1, 2]

    def test_chained_overlap_stays_one_group(self):
        # b overlaps a, c overlaps b but not a: still one group (no
        # quiescent instant separates them).
        evs = [E("insert", True, 0, 10), E("contains", True, 5, 20),
               E("delete", True, 15, 30)]
        assert [len(g) for g in _overlap_groups(evs)] == [3]

    def test_touching_intervals_share_a_group(self):
        # end == next start is not quiescent (the cut needs strict >).
        evs = [E("insert", True, 0, 5), E("contains", True, 5, 8)]
        assert [len(g) for g in _overlap_groups(evs)] == [2]

    def test_real_time_enforced_across_groups(self):
        # Group 1 ends with the key present; group 2's contains cannot
        # report absent.
        evs = [E("insert", True, 0, 1), E("contains", False, 5, 6)]
        assert not check_key_history(evs, False, True)


class TestLargeHistories:
    """Histories past any small exact-search cap: per-group pruning
    keeps the check exact for campaign-sized per-key histories."""

    def test_long_sequential_alternation(self):
        evs, t = [], 0
        for i in range(60):
            evs.append(E("insert" if i % 2 == 0 else "delete", True,
                         t, t + 1))
            t += 2
        assert check_key_history(evs, False, False)
        assert not check_key_history(evs, False, True)

    def test_wide_overlap_group_exact(self):
        # 13 fully-overlapping ops: the memoized search stays in budget.
        evs = ([E("contains", False, 0, 100) for _ in range(6)]
               + [E("contains", True, 0, 100) for _ in range(6)]
               + [E("insert", True, 0, 100)])
        assert check_key_history(evs, False, True)


class TestNetEffectFallback:
    def test_net_effect_condition(self):
        one = lambda op, res: E(op, res, 0, 1)  # noqa: E731
        assert _net_effect_ok([one("insert", True)], False, True)
        assert not _net_effect_ok([one("insert", True)], False, False)
        assert _net_effect_ok([one("insert", True), one("delete", True)],
                              False, False)
        assert not _net_effect_ok([one("insert", True), one("insert", True)],
                                  False, True)
        assert _net_effect_ok([one("delete", True)], True, False)
        assert not _net_effect_ok([one("delete", True), one("delete", True)],
                                  True, False)
        # Failed ops do not move the register.
        assert _net_effect_ok([one("insert", False)] * 5, True, True)

    def test_overflow_falls_back_and_is_reported(self, monkeypatch):
        monkeypatch.setattr(linearize, "MAX_VISITS", 50)
        evs = [E("contains", False, 0, 100, key=3) for _ in range(12)]
        report = check_history(evs, initial_keys=[], final_keys=[])
        assert report.ok
        assert report.fallback_keys == 1

    def test_overflow_fallback_still_rejects(self, monkeypatch):
        monkeypatch.setattr(linearize, "MAX_VISITS", 50)
        evs = ([E("contains", False, 0, 100, key=3) for _ in range(12)]
               + [E("insert", True, 0, 100, key=3),
                  E("insert", True, 0, 100, key=3)])
        report = check_history(evs, initial_keys=[], final_keys=[3])
        assert not report.ok
        assert report.fallback_keys == 1
        assert len(report.violations) == 1


class TestCheckHistory:
    def test_recorder_round_trip(self):
        r = HistoryRecorder()
        r.record("insert", 5, 1, 0, 2)       # result coerced to bool
        r.record("contains", 5, True, 3, 4)
        r.record("delete", 9, False, 0, 1)   # fails: 9 never present
        assert len(r) == 3
        pk = r.per_key()
        assert set(pk) == {5, 9} and len(pk[5]) == 2
        assert pk[5][0].result is True

        report = check_history(r, initial_keys=[], final_keys=[5])
        assert report.ok, report.summary()
        assert report.checked_keys == 2 and report.events == 3
        assert "linearizable" in report.summary()

    def test_leaked_key_without_events_is_a_violation(self):
        # Key 5 vanished although nothing ever operated on it.
        report = check_history([], initial_keys=[5], final_keys=[])
        assert not report.ok
        assert [v.key for v in report.violations] == [5]

    def test_violations_are_per_key(self):
        evs = [E("contains", True, 0, 1, key=7),    # impossible: absent
               E("insert", True, 0, 1, key=8)]
        report = check_history(evs, initial_keys=[], final_keys=[8])
        assert not report.ok
        assert [v.key for v in report.violations] == [7]
        text = str(report.violations[0])
        assert "key 7" in text and "contains(7) -> True" in text
        assert "NOT linearizable" in report.summary()
