"""Tests for the typed hang-surfacing paths: the livelock watchdog
(repro.chaos.watchdog), the bounded lock spins (``LockTimeout``), and
the bounded traversal restarts (``RestartStorm``)."""

from __future__ import annotations

import pytest

from repro.chaos.faults import ChaosConfig, FaultInjector
from repro.chaos.watchdog import (LivelockDetected, StuckOpDiagnostics,
                                  Watchdog)
from repro.core import GFSL
from repro.core import constants as C
from repro.core.gfsl import OpStats
from repro.core.locks import LockTimeout
from repro.core.traversal import RestartStorm, _count_restart


class TestWatchdog:
    def test_task_budget_trips_strictly_above(self):
        w = Watchdog(task_step_budget=10, total_step_budget=10**9)
        w.observe(0, 10, 10)               # at budget: still fine
        with pytest.raises(LivelockDetected) as ei:
            w.observe(3, 11, 50)
        d = ei.value.diagnostics
        assert (d.task_id, d.task_steps, d.total_steps) == (3, 11, 50)

    def test_total_budget_trips(self):
        w = Watchdog(task_step_budget=10**9, total_step_budget=100)
        w.observe(0, 5, 100)
        with pytest.raises(LivelockDetected):
            w.observe(0, 6, 101)

    def test_finished_counts(self):
        w = Watchdog()
        w.finished(0)
        w.finished(1)
        assert w.finished_tasks == 2

    def test_diagnostics_carry_accounting(self):
        stats = OpStats(lock_retries=7, contains_restarts=3,
                        update_restarts=2, max_zombie_chain=4)
        inj = FaultInjector(ChaosConfig.adversarial(), seed=1)
        inj.current_task = 1
        inj.note_lock(4)
        inj.counts["stall_split"] = 9
        w = Watchdog(stats=stats, injector=inj, labels={1: "insert(42)"})
        d = w.diagnose(1, 5, 9)
        assert d.label == "insert(42)"
        assert d.lock_retries == 7 and d.contains_restarts == 3
        assert d.update_restarts == 2 and d.max_zombie_chain == 4
        assert d.lock_owners == {4: 1}
        assert d.fault_counts["stall_split"] == 9
        text = str(d)
        assert "insert(42)" in text
        assert "locks held" in text
        assert "stall_split" in text

    def test_diagnostics_str_minimal(self):
        text = str(StuckOpDiagnostics(task_id=2, task_steps=5,
                                      total_steps=8))
        assert "task 2" in text and "5 of 8" in text


class TestLockTimeout:
    def test_externally_held_lock_times_out_with_owner(self):
        """A lock word nobody will ever release must surface as a typed
        LockTimeout naming the chunk and (via the injector's ownership
        table) the holding task — not as an endless spin."""
        sl = GFSL(capacity_chunks=64, team_size=8)
        inj = FaultInjector(seed=0)
        inj.current_task = 7
        inj.note_lock(0)                  # pretend task 7 holds chunk 0
        sl.chaos = inj
        sl.lock_retry_limit = 64
        # Chunk 0 is the bottom level's initial chunk — the enclosing
        # chunk of any key in a fresh structure.  Jam its lock word.
        sl.ctx.mem.write_word(
            sl.layout.entry_addr(0, sl.geo.lock_idx), C.LOCKED)
        with pytest.raises(LockTimeout) as ei:
            sl.insert(5)
        e = ei.value
        assert e.chunk == 0
        assert e.attempts == 64
        assert e.owner == 7
        assert "chunk 0" in str(e) and "task 7" in str(e)

    def test_without_injector_owner_is_none(self):
        sl = GFSL(capacity_chunks=64, team_size=8)
        sl.lock_retry_limit = 16
        sl.ctx.mem.write_word(
            sl.layout.entry_addr(0, sl.geo.lock_idx), C.LOCKED)
        with pytest.raises(LockTimeout) as ei:
            sl.insert(5)
        assert ei.value.owner is None


class TestRestartStorm:
    def test_bounded_restarts_raise_with_site(self):
        class _SL:
            restart_limit = 5
        sl = _SL()
        restarts = 0
        with pytest.raises(RestartStorm) as ei:
            for _ in range(10):
                restarts = _count_restart(sl, 42, restarts, "search_down")
        e = ei.value
        assert e.key == 42
        assert e.restarts == 5
        assert e.where == "search_down"
        assert "retry storm" in str(e)
