"""Differential satellite: ``interleaved-chaos`` with zero faults must
be *byte-identical* to ``interleaved`` — same per-op results, same final
structure, and same values of every scheduling-sensitive counter
(splits, merges, lock retries, restarts), because the injector draws
nothing and emits nothing at rate zero.

This is deliberately stronger than the engine-level differential test
(tests/engine/test_differential.py), which only compares the
scheduling-*invariant* counters across all backends.
"""

from __future__ import annotations

import pytest

from repro.chaos import ChaosBackend, check_history
from repro.chaos.faults import ChaosConfig
from repro.engine import BACKEND_NAMES, OpBatch, make_backend, make_structure
from repro.workloads import Mixture, generate


def _run(backend, workload):
    sl = make_structure("gfsl", workload, team_size=8, p_chunk=1.0, seed=3)
    sl.op_stats.reset()
    res = backend.execute(sl, OpBatch.from_workload(workload))
    stats = {f: getattr(sl.op_stats, f)
             for f in sl.op_stats.__dataclass_fields__}
    return res.results, sorted(sl.keys()), stats


@pytest.mark.parametrize("sched_seed", [None, 5])
def test_zero_fault_chaos_byte_identical_to_interleaved(sched_seed):
    # Duplicate-heavy stream: any schedule divergence would show up as
    # differing per-op results, not just differing counters.
    w = generate(Mixture(30, 30, 40), key_range=80, n_ops=400, seed=11)
    ref = _run(make_backend("interleaved", concurrency=12, seed=sched_seed), w)
    got = _run(ChaosBackend(concurrency=12, seed=sched_seed), w)
    assert got[0] == ref[0], "per-op results diverge"
    assert got[1] == ref[1], "final key set diverges"
    assert got[2] == ref[2], "scheduling-sensitive counters diverge"


def test_registered_in_engine():
    assert "interleaved-chaos" in BACKEND_NAMES
    b = make_backend("interleaved-chaos", concurrency=4)
    assert b.name == "interleaved-chaos"


def test_faulty_run_records_full_linearizable_history():
    w = generate(Mixture(25, 25, 50), key_range=60, n_ops=300, seed=4)
    sl = make_structure("gfsl", w, team_size=8, p_chunk=1.0, seed=3)
    backend = ChaosBackend(concurrency=8, config=ChaosConfig.adversarial(),
                           chaos_seed=4)
    res = backend.execute(sl, OpBatch.from_workload(w))
    assert len(res) == w.n_ops
    assert len(backend.recorder) == w.n_ops
    assert backend.injector.total_injected > 0
    # Wave offsetting keeps every interval well-formed and the whole
    # history totally ordered across waves.
    assert all(e.start <= e.end for e in backend.recorder.events)
    report = check_history(backend.recorder,
                           set(int(k) for k in w.prefill), set(sl.keys()))
    assert report.ok, report.summary()
