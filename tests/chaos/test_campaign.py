"""Campaign-level tests (repro.chaos.campaign): the tentpole acceptance
criteria live here.

* Property: seeded adversarial campaigns leave the structure passing
  every ``validate_structure`` invariant and the recorded history
  linearizable.
* Acceptance: a 10k-op campaign injects faults at every injection
  point and still checks out.
* Checker validation: a deliberately planted bug is caught fast, and
  the shrinker reduces the failing configuration to a smaller one that
  still reproduces, printable as a one-line repro command.
* Typed failures (LockTimeout, LivelockDetected) land in the report
  instead of escaping.
"""

from __future__ import annotations

import time
from dataclasses import replace

import pytest

from repro.chaos import (CampaignConfig, repro_command, run_campaign,
                         shrink_campaign)
from repro.chaos.faults import FAULT_KINDS, ChaosConfig


@pytest.mark.parametrize("seed", [0, 3, 11])
def test_adversarial_campaign_clean(seed):
    """Property satellite: post-campaign structure passes every
    core/validate.py invariant and the history is linearizable."""
    report = run_campaign(CampaignConfig(n_ops=800, seed=seed))
    assert report.error is None, report.summary()
    assert report.ok, report.summary()
    assert report.lin is not None and report.lin.ok
    assert report.invariant_error is None
    assert report.invariants is not None      # validate_structure ran
    assert report.faults_injected > 0
    assert "ok" in report.summary()


def test_acceptance_10k_ops_all_fault_kinds():
    """ISSUE acceptance: >= 10k ops, >= 200 injected faults covering
    every injection-point kind, campaign linearizable + invariant-clean."""
    report = run_campaign(CampaignConfig(n_ops=10_000, seed=42))
    assert report.ok, report.summary()
    assert report.faults_injected >= 200
    injected = {k for k, v in report.fault_counts.items() if v > 0}
    assert injected == set(FAULT_KINDS)


def test_planted_bug_caught_and_shrunk():
    """ISSUE acceptance: the planted skip-zombie-recheck bug is caught
    by the linearizability checker in well under 30s, and the shrinker
    hands back a smaller configuration that still fails."""
    t0 = time.monotonic()
    cfg = CampaignConfig(
        n_ops=2_000, seed=0,
        faults=ChaosConfig.adversarial(bug="skip-zombie-recheck"))
    report = run_campaign(cfg)
    assert not report.ok
    assert report.error is None               # caught by the checker,
    assert report.lin is not None             # not by a crash
    assert report.lin.violations
    assert "FAIL" in report.summary()

    small = shrink_campaign(cfg, max_runs=10)
    assert small.n_ops <= cfg.n_ops
    assert not run_campaign(small).ok         # still reproduces
    cmd = repro_command(small)
    assert cmd.startswith("PYTHONPATH=src python -m repro chaos")
    assert "--bug skip-zombie-recheck" in cmd
    assert time.monotonic() - t0 < 30.0


def test_lock_timeout_lands_in_report():
    cfg = CampaignConfig(n_ops=200, seed=1,
                         faults=ChaosConfig(fail_lock_cas=0.9),
                         lock_retry_limit=2)
    report = run_campaign(cfg)
    assert not report.ok
    assert report.error is not None and "LockTimeout" in report.error
    assert "FAIL" in report.summary()


def test_livelock_lands_in_report():
    cfg = CampaignConfig(n_ops=60, seed=2, task_step_budget=30)
    report = run_campaign(cfg)
    assert not report.ok
    assert report.error is not None and "LivelockDetected" in report.error


def test_repro_command_reflects_config():
    base = CampaignConfig()
    cmd = repro_command(base)
    assert "--seed 0" in cmd and "--ops 2000" in cmd
    assert "--mix 20 20 60" in cmd
    assert "--no-faults" not in cmd

    dropped = replace(base, faults=base.faults.without("stall_split"))
    assert "--disable stall_split" in repro_command(dropped)

    quiet = replace(base, faults=ChaosConfig())
    assert "--no-faults" in repro_command(quiet)
