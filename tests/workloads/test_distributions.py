"""Key-popularity distributions for workload generation.

``--distribution zipf|hotspot`` skews the op key stream while leaving
the prefill and the op mixture untouched — and must not perturb the
draw order of anything the uniform path already generates (seeded
back-compat)."""

import numpy as np
import pytest

from repro.workloads import DISTRIBUTIONS, MIX_10_10_80, generate
from repro.workloads.generator import (HOT_FRACTION, HOT_WEIGHT,
                                       hotspot_keys)


class TestHotspot:
    def test_hot_set_concentration(self):
        wl = generate(MIX_10_10_80, key_range=10_000, n_ops=20_000,
                      seed=3, distribution="hotspot")
        keys, counts = np.unique(wl.keys, return_counts=True)
        order = np.argsort(counts)[::-1]
        n_hot = int(round(10_000 * HOT_FRACTION))
        hot_mass = counts[order][:n_hot].sum() / counts.sum()
        # 90% of ops to 10% of keys (plus the uniform 10% leaking in).
        assert hot_mass > HOT_WEIGHT - 0.05
        assert (keys >= 1).all() and (keys <= 10_000).all()

    def test_hot_set_is_a_seeded_permutation(self):
        """Different seeds pick different hot keys (the hot set is not
        always the smallest keys)."""
        rng = np.random.default_rng(0)
        a = hotspot_keys(np.random.default_rng(1), 1000, 5000)
        b = hotspot_keys(np.random.default_rng(2), 1000, 5000)
        top = lambda d: set(np.unique(d, return_counts=True)[0][  # noqa: E731
            np.argsort(np.unique(d, return_counts=True)[1])[::-1][:20]])
        assert top(a) != top(b)
        assert (hotspot_keys(rng, 100, 10) >= 1).all()

    def test_deterministic_per_seed(self):
        a = generate(MIX_10_10_80, key_range=500, n_ops=2000, seed=9,
                     distribution="hotspot")
        b = generate(MIX_10_10_80, key_range=500, n_ops=2000, seed=9,
                     distribution="hotspot")
        assert np.array_equal(a.keys, b.keys)
        assert np.array_equal(a.ops, b.ops)
        assert np.array_equal(a.prefill, b.prefill)


class TestZipf:
    def test_zipf_skews_toward_small_ranks(self):
        wl = generate(MIX_10_10_80, key_range=10_000, n_ops=20_000,
                      seed=3, distribution="zipf", zipf_s=1.2)
        _, counts = np.unique(wl.keys, return_counts=True)
        top = np.sort(counts)[::-1]
        assert top[:100].sum() > 0.3 * counts.sum()


class TestBackCompat:
    def test_distribution_choice_leaves_prefill_and_ops_alone(self):
        """Prefill and op mixture are drawn before the key stream, so
        every distribution shares them at a given seed."""
        base = generate(MIX_10_10_80, key_range=1000, n_ops=4000, seed=5)
        for dist in DISTRIBUTIONS[1:]:
            wl = generate(MIX_10_10_80, key_range=1000, n_ops=4000,
                          seed=5, distribution=dist)
            assert np.array_equal(wl.prefill, base.prefill), dist
            assert np.array_equal(wl.ops, base.ops), dist
            assert not np.array_equal(wl.keys, base.keys), dist

    def test_uniform_is_the_default(self):
        a = generate(MIX_10_10_80, key_range=1000, n_ops=1000, seed=5)
        b = generate(MIX_10_10_80, key_range=1000, n_ops=1000, seed=5,
                     distribution="uniform")
        assert np.array_equal(a.keys, b.keys)

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ValueError, match="distribution"):
            generate(MIX_10_10_80, key_range=100, n_ops=10, seed=0,
                     distribution="pareto")
        assert DISTRIBUTIONS == ("uniform", "zipf", "hotspot", "front")
