"""Tests for the workload runner and its analytic models."""

import math

import pytest

from repro.core import GFSL_KERNEL
from repro.gpu import DeviceConfig, LaunchConfig
from repro.gpu.occupancy import compute_occupancy
from repro.workloads import (CONTAINS_ONLY, DELETE_ONLY, INSERT_ONLY,
    MIX_10_10_80, MIX_20_20_60, generate, mc_paper_scale_feasible,
    run_workload)
from repro.workloads.runner import (build_gfsl, build_mc,
                                    contention_serial_cycles)

DEV = DeviceConfig.gtx970()


def small_workload(mix=MIX_10_10_80, key_range=5_000, n_ops=200, seed=1):
    return generate(mix, key_range=key_range, n_ops=n_ops, seed=seed)


class TestBuilders:
    def test_build_gfsl_prefilled(self):
        w = small_workload()
        sl = build_gfsl(w)
        assert len(sl) == len(w.prefill)
        assert sl.contains(int(w.prefill[0]))

    def test_build_mc_prefilled(self):
        w = small_workload()
        mc = build_mc(w)
        assert len(mc) == len(w.prefill)

    def test_build_insert_only_midpoint(self):
        w = small_workload(INSERT_ONLY, n_ops=50)
        sl = build_gfsl(w)
        assert len(sl) == len(w.prefill) > 0


class TestRunWorkload:
    def test_gfsl_point(self):
        r = run_workload("gfsl", small_workload())
        assert r.structure == "GFSL-32"
        assert r.mops > 0 and not r.oom
        assert r.transactions_per_op > 0
        assert 0 < r.l2_hit_rate <= 1.0

    def test_mc_point(self):
        r = run_workload("mc", small_workload())
        assert r.structure == "M&C"
        assert r.mops > 0
        # M&C's scattered hops cost far more transactions per op.
        g = run_workload("gfsl", small_workload())
        assert r.transactions_per_op > 3 * g.transactions_per_op

    def test_team_size_16(self):
        r = run_workload("gfsl", small_workload(), team_size=16)
        assert r.structure == "GFSL-16"

    def test_unknown_structure(self):
        with pytest.raises(ValueError):
            run_workload("btree", small_workload())

    def test_deterministic(self):
        a = run_workload("gfsl", small_workload())
        b = run_workload("gfsl", small_workload())
        assert a.mops == pytest.approx(b.mops)

    def test_single_op_workloads_run(self):
        for mix in (CONTAINS_ONLY, INSERT_ONLY, DELETE_ONLY):
            w = small_workload(mix, key_range=2000, n_ops=150)
            r = run_workload("gfsl", w)
            assert r.mops > 0, mix.name


class TestPaperScaleOOM:
    def test_mixed_feasible_to_10m(self):
        assert mc_paper_scale_feasible(10_000_000, MIX_10_10_80)

    def test_mixed_infeasible_at_30m(self):
        assert not mc_paper_scale_feasible(30_000_000, MIX_10_10_80)

    def test_single_op_feasible_at_3m(self):
        assert mc_paper_scale_feasible(3_000_000, DELETE_ONLY)
        assert mc_paper_scale_feasible(3_000_000, INSERT_ONLY)

    def test_single_op_infeasible_at_10m(self):
        assert not mc_paper_scale_feasible(10_000_000, DELETE_ONLY)
        assert not mc_paper_scale_feasible(10_000_000, CONTAINS_ONLY)

    def test_oom_point_returned(self):
        w = generate(DELETE_ONLY, key_range=10_000_000, n_ops=10, seed=1)
        # Don't actually build a 10M structure: feasibility is checked
        # before any allocation.
        r = run_workload("mc", w)
        assert r.oom
        assert math.isnan(r.mops)

    def test_oom_can_be_disabled(self):
        w = small_workload()
        r = run_workload("mc", w, enforce_paper_oom=False)
        assert not r.oom


class TestContentionModel:
    def _occ(self, kernel):
        return compute_occupancy(DEV, LaunchConfig(warps_per_block=16),
                                 kernel)

    def test_zero_without_updates(self):
        w = small_workload(CONTAINS_ONLY, n_ops=100)
        assert contention_serial_cycles(
            DEV, self._occ(GFSL_KERNEL), GFSL_KERNEL, w, slots=100,
            coeff=(30.0, 0.2)) == 0.0

    def test_grows_with_update_fraction(self):
        w_lo = small_workload(MIX_10_10_80)
        w_hi = small_workload(MIX_20_20_60)
        occ = self._occ(GFSL_KERNEL)
        lo = contention_serial_cycles(DEV, occ, GFSL_KERNEL, w_lo, 100,
                                      (30.0, 0.2))
        hi = contention_serial_cycles(DEV, occ, GFSL_KERNEL, w_hi, 100,
                                      (30.0, 0.2))
        assert hi > lo > 0

    def test_vanishes_with_many_slots(self):
        w = small_workload(MIX_20_20_60)
        occ = self._occ(GFSL_KERNEL)
        tight = contention_serial_cycles(DEV, occ, GFSL_KERNEL, w, 100,
                                         (30.0, 0.2))
        loose = contention_serial_cycles(DEV, occ, GFSL_KERNEL, w, 100_000,
                                         (30.0, 0.2))
        assert loose < tight / 10

    def test_small_range_dip_materializes(self):
        """The paper's contention dip: [20,20,60] at a tiny range is
        slower per op than at a mid range for GFSL."""
        tiny = run_workload("gfsl", small_workload(MIX_20_20_60, 3_000, 300))
        mid = run_workload("gfsl", small_workload(MIX_20_20_60, 100_000, 300))
        assert tiny.mops < mid.mops
