"""Tests for workload generation (Section 5.1 semantics)."""

import numpy as np
import pytest

from repro.workloads import (CONTAINS_ONLY, DELETE_ONLY, INSERT_ONLY,
                             MIX_10_10_80, PAPER_MIXTURES, Mixture, Op,
                             generate, prefill_for)


class TestMixture:
    def test_name(self):
        assert MIX_10_10_80.name == "[10,10,80]"

    def test_must_total_100(self):
        with pytest.raises(ValueError):
            Mixture(50, 50, 50)
        with pytest.raises(ValueError):
            Mixture(-10, 10, 100)

    def test_kinds(self):
        assert MIX_10_10_80.kind == "mixed"
        assert CONTAINS_ONLY.kind == "contains-only"
        assert INSERT_ONLY.kind == "insert-only"
        assert DELETE_ONLY.kind == "delete-only"

    def test_update_fraction(self):
        assert MIX_10_10_80.update_fraction == pytest.approx(0.2)
        assert CONTAINS_ONLY.update_fraction == 0.0

    def test_paper_mixtures(self):
        names = [m.name for m in PAPER_MIXTURES]
        assert names == ["[1,1,98]", "[5,5,90]", "[10,10,80]", "[20,20,60]"]


class TestPrefill:
    def test_mixed_half_range(self):
        rng = np.random.default_rng(0)
        pf = prefill_for(MIX_10_10_80, 1000, rng)
        assert len(pf) == 500
        assert len(set(pf.tolist())) == 500
        assert pf.min() >= 1 and pf.max() <= 1000

    def test_contains_only_full_range(self):
        rng = np.random.default_rng(0)
        pf = prefill_for(CONTAINS_ONLY, 100, rng)
        assert sorted(pf.tolist()) == list(range(1, 101))

    def test_delete_only_full_range(self):
        rng = np.random.default_rng(0)
        assert len(prefill_for(DELETE_ONLY, 50, rng)) == 50

    def test_insert_only_growth_midpoint(self):
        # Scaled sampling of the paper's empty-start test: half-full
        # prefill (see prefill_for docstring / DESIGN.md §2).
        rng = np.random.default_rng(0)
        assert len(prefill_for(INSERT_ONLY, 100, rng)) == 50


class TestGenerate:
    def test_shapes(self):
        w = generate(MIX_10_10_80, key_range=1000, n_ops=500, seed=1)
        assert w.n_ops == 500
        assert len(w.keys) == 500
        assert w.keys.min() >= 1 and w.keys.max() <= 1000

    def test_mixture_proportions(self):
        w = generate(MIX_10_10_80, key_range=10_000, n_ops=20_000, seed=2)
        frac_ins = np.count_nonzero(w.ops == Op.INSERT) / w.n_ops
        frac_del = np.count_nonzero(w.ops == Op.DELETE) / w.n_ops
        assert frac_ins == pytest.approx(0.10, abs=0.01)
        assert frac_del == pytest.approx(0.10, abs=0.01)

    def test_deterministic_by_seed(self):
        a = generate(MIX_10_10_80, 1000, 200, seed=5)
        b = generate(MIX_10_10_80, 1000, 200, seed=5)
        c = generate(MIX_10_10_80, 1000, 200, seed=6)
        assert np.array_equal(a.keys, b.keys)
        assert np.array_equal(a.ops, b.ops)
        assert not np.array_equal(a.keys, c.keys)

    def test_delete_only_keys_unique(self):
        """'for a range of 100K keys, 100K operations were performed' —
        each key deleted about once, so keys are drawn without
        replacement."""
        w = generate(DELETE_ONLY, key_range=500, n_ops=500, seed=3)
        assert len(set(w.keys.tolist())) == 500
        assert (w.ops == Op.DELETE).all()

    def test_insert_only_all_inserts(self):
        w = generate(INSERT_ONLY, key_range=100, n_ops=50, seed=4)
        assert (w.ops == Op.INSERT).all()
        assert len(w.prefill) == 50

    def test_range_too_small(self):
        with pytest.raises(ValueError):
            generate(MIX_10_10_80, key_range=2, n_ops=10)


class TestRNGDeterminism:
    """One seed fully determines the workload — every distribution path
    draws from the single ``default_rng(seed)`` instance."""

    @pytest.mark.parametrize("dist", ["uniform", "zipf"])
    def test_same_seed_identical_opbatch(self, dist):
        kw = dict(key_range=2_000, n_ops=400, seed=11, distribution=dist)
        wa = generate(MIX_10_10_80, **kw)
        wb = generate(MIX_10_10_80, **kw)
        assert np.array_equal(wa.prefill, wb.prefill)
        a, b = wa.to_batch(), wb.to_batch()
        assert np.array_equal(a.ops, b.ops)
        assert np.array_equal(a.keys, b.keys)
        assert np.array_equal(a.values, b.values)

    def test_delete_only_path_seeded(self):
        a = generate(DELETE_ONLY, key_range=300, n_ops=300, seed=9)
        b = generate(DELETE_ONLY, key_range=300, n_ops=300, seed=9)
        assert np.array_equal(a.keys, b.keys)
        assert np.array_equal(a.values, b.values)

    def test_values_vary_with_seed(self):
        a = generate(MIX_10_10_80, 1000, 100, seed=1)
        b = generate(MIX_10_10_80, 1000, 100, seed=2)
        assert not np.array_equal(a.values, b.values)

    def test_batch_is_zero_copy(self):
        w = generate(MIX_10_10_80, 1000, 100, seed=1)
        batch = w.to_batch()
        assert np.shares_memory(batch.keys, w.keys)
        assert np.shares_memory(batch.ops, w.ops)
        assert np.shares_memory(batch.values, w.values)


class TestZipf:
    def test_skewed_distribution(self):
        from repro.workloads import zipf_keys
        rng = np.random.default_rng(0)
        keys = zipf_keys(rng, key_range=10_000, n=20_000, s=1.2)
        assert keys.min() >= 1 and keys.max() <= 10_000
        # Heavy skew: the most common key dominates far beyond uniform.
        _vals, counts = np.unique(keys, return_counts=True)
        assert counts.max() > 50 * counts.mean()

    def test_hot_keys_scattered(self):
        """The hot set must not cluster at the low end of the key space
        (rank→key mapping is permuted)."""
        from repro.workloads import zipf_keys
        rng = np.random.default_rng(1)
        keys = zipf_keys(rng, key_range=10_000, n=5_000, s=1.2)
        vals, counts = np.unique(keys, return_counts=True)
        hottest = vals[np.argmax(counts)]
        assert hottest > 100  # overwhelmingly likely after permutation

    def test_generate_zipf_workload(self):
        w = generate(MIX_10_10_80, key_range=5_000, n_ops=3_000, seed=2,
                     distribution="zipf", zipf_s=1.1)
        assert w.n_ops == 3_000
        _v, counts = np.unique(w.keys, return_counts=True)
        assert counts.max() > 20

    def test_unknown_distribution(self):
        with pytest.raises(ValueError):
            generate(MIX_10_10_80, 1000, 10, distribution="pareto")
